#include "campaign/cache.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "groundtruth/engine.h"
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/error.h"

namespace fsr::campaign {
namespace {

void append_path(std::string& out, const spp::Path& path) {
  out += spp::path_name(path);
}

const char* pref_rel_spelling(algebra::PrefRel rel) {
  switch (rel) {
    case algebra::PrefRel::strictly_better:
      return "<";
    case algebra::PrefRel::equal:
      return "=";
    case algebra::PrefRel::better_or_equal:
      return "<=";
  }
  return "<";
}

}  // namespace

std::string canonical_spp(const spp::SppInstance& instance) {
  std::string out = "dest=" + instance.destination() + ";edges=";
  for (const auto& [u, v] : instance.edges()) {
    out += u + "~" + v + ",";
  }
  out += ";paths=";
  for (const std::string& node : instance.nodes()) {
    out += node + ":";
    for (const spp::Path& path : instance.permitted(node)) {
      append_path(out, path);
      out += ",";
    }
    out += ";";
  }
  return out;
}

std::string canonical_spec(const algebra::SymbolicSpec& spec) {
  std::string out = "sigs=";
  for (const std::string& sig : spec.signatures) out += sig + ",";
  out += ";prefs=";
  for (const auto& pref : spec.preferences) {
    out += pref.lhs + pref_rel_spelling(pref.rel) + pref.rhs + ",";
  }
  out += ";exts=";
  for (const auto& ext : spec.extensions) {
    out += ext.label + "(+)" + ext.from_sig + "=" + ext.to_sig + ",";
  }
  out += ";templates=";
  for (const auto& tmpl : spec.additive_templates) {
    out += std::to_string(tmpl.delta) + ",";
  }
  return out;
}

std::string canonical_topology(const topology::Topology& topology) {
  std::string out = "dest=" + topology.destination + ";nodes=";
  for (const std::string& node : topology.nodes) out += node + ",";
  out += ";links=";
  for (const auto& link : topology.links) {
    out += link.u + "~" + link.v + "[" + link.label_uv.to_string() + "/" +
           link.label_vu.to_string() + "]" +
           std::to_string(link.net_config.bandwidth_mbps) + "mbps," +
           std::to_string(link.net_config.latency) + "us," +
           std::to_string(link.net_config.max_jitter) + "j;";
  }
  out += ";domains=";
  for (const auto& [node, domain] : topology.domain_of) {
    out += node + "=" + domain + ",";
  }
  return out;
}

std::string scenario_cache_key(const Scenario& scenario) {
  std::string out = to_string(scenario.kind);
  if (scenario.kind == ScenarioKind::emulation ||
      scenario.kind == ScenarioKind::simulation) {
    // Emulation and simulation outcomes depend on the scenario seed
    // (jitter and batching drift; link delays and churn schedules); safety
    // verdicts do not.
    out += "|seed=" + std::to_string(scenario.seed);
  }
  if (scenario.spp) {
    out += "|spp|" + canonical_spp(*scenario.spp);
  } else if (scenario.algebra) {
    out += "|alg|" + scenario.algebra->name() + "|" +
           canonical_spec(scenario.algebra->symbolic());
    if (scenario.topology) out += "|topo|" + canonical_topology(*scenario.topology);
  } else {
    throw InvalidArgument("scenario '" + scenario.id +
                          "' carries neither an SPP instance nor an algebra");
  }
  return out;
}

std::string scenario_cache_key(const Scenario& scenario,
                               const sim::SimOptions& sim) {
  std::string out = scenario_cache_key(scenario);
  if (scenario.kind == ScenarioKind::simulation) {
    // Every SimOptions knob that shapes a SimResult is keyed; the seed is
    // already in the base key, and the detector (plus its test-only hash
    // mask) is deliberately absent — both detectors are byte-identical (a
    // tested property), so the ablation shares cache entries.
    out += "|sim|scenario=" + sim.scenario +
           ";suppression=" + sim.suppression +
           ";mrai=" + std::to_string(sim.mrai_ticks) +
           ";delay=" + std::to_string(sim.max_link_delay) +
           ";steps=" + std::to_string(sim.max_steps);
  }
  return out;
}

std::string scenario_cache_key(const Scenario& scenario, bool attempt_repair,
                               const repair::RepairOptions& repair,
                               const sim::SimOptions& sim) {
  std::string out = scenario_cache_key(scenario, sim);
  if (attempt_repair && scenario.kind == ScenarioKind::safety &&
      scenario.spp != nullptr) {
    // Repair outcomes are content-determined (ground-truth trials are
    // seeded from the content digest), so the marker carries no seed and
    // duplicate-content scenarios still collapse to one solve. It DOES
    // carry every option that shapes the outcome: the disk cache outlives
    // the process, and a warm run under a different oracle, beam width, or
    // budget must miss, not serve stale verdicts. use_incremental is
    // deliberately absent — both SMT solver strategies produce identical
    // reports unconditionally (a tested property), so that ablation shares
    // cache entries. use_incremental_oracle IS keyed: the oracle paths
    // agree only while no conflict budget dies mid-query (the persistent
    // session's learned clauses can decide instances the scratch encode
    // cannot afford), so cross-strategy sharing could serve a verdict the
    // other strategy would abstain from.
    out += "|repair|gt=";
    out += groundtruth::to_string(repair.ground_truth);
    if (repair.ground_truth == groundtruth::Mode::sat_search) {
      out += repair.use_incremental_oracle ? "/session" : "/scratch";
    }
    out += ";edits=" + std::to_string(repair.max_edits) +
           ";beam=" + std::to_string(repair.beam_width) +
           ";checks=" + std::to_string(repair.max_checks) +
           ";relax=" + (repair.allow_relax ? std::string("1") : "0") +
           ";states=" + std::to_string(repair.ground_truth_max_states) +
           ";conflicts=" + std::to_string(repair.ground_truth_max_conflicts) +
           ";solutions=" + std::to_string(repair.ground_truth_max_solutions) +
           ";spvp=" + std::to_string(repair.spvp_max_activations) + "x" +
           std::to_string(repair.spvp_trials);
  }
  return out;
}

std::string content_digest(const std::string& canonical) {
  std::uint64_t hash = fnv1a64(canonical);
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

// ------------------------------------------------------- disk persistence --
//
// One outcome per file, as a versioned line-oriented record: every line is
// "<field> <value>" with backslash/newline escaping, exactly one value per
// line (multi-valued fields write a count line followed by that many value
// lines). The format is append-only versioned: readers reject records
// whose header they do not know, so stale caches degrade to misses.

namespace {

// v4: the simulation payload gained sim.suppression and sim.cutoff (the
// suppression-policy + budget-cutoff PR), and simulation cache keys gained
// the sim-config marker — the version bump retires every v3 sim record,
// whose keys could alias across sim configurations. v3: outcomes gained
// the simulation payload (has_sim + sim.* fields) and the "simulation"
// kind tag; v2 lacked both. v2: RepairSummary gained oracle_budget (the
// incremental-oracle PR). Records with an older header fail the check and
// degrade to misses.
constexpr const char* k_record_header = "fsr-outcome v4";

std::string escape_value(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_value(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    const char next = text[++i];
    out += next == 'n' ? '\n' : next == 'r' ? '\r' : next;
  }
  return out;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);  // round-trips IEEE-754
  return buf;
}

class RecordWriter {
 public:
  void field(const char* name, const std::string& value) {
    out_ += name;
    out_ += ' ';
    out_ += escape_value(value);
    out_ += '\n';
  }
  void field(const char* name, bool value) {
    field(name, std::string(value ? "1" : "0"));
  }
  void field(const char* name, double value) {
    field(name, format_double(value));
  }
  void field(const char* name, std::uint64_t value) {
    field(name, std::to_string(value));
  }
  void field(const char* name, std::int64_t value) {
    field(name, std::to_string(value));
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_ = std::string(k_record_header) + "\n";
};

/// Sequential reader over "<field> <value>" lines. Every getter checks the
/// expected field name; any mismatch poisons the record (ok() false), so a
/// truncated or corrupted file is rejected as a whole.
class RecordReader {
 public:
  explicit RecordReader(const std::string& text) : stream_(text) {
    std::string header;
    if (!std::getline(stream_, header) || header != k_record_header) {
      ok_ = false;
    }
  }

  bool ok() const noexcept { return ok_; }

  std::string text(const char* name) {
    std::string line;
    if (!ok_ || !std::getline(stream_, line)) {
      ok_ = false;
      return {};
    }
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || line.compare(0, space, name) != 0) {
      ok_ = false;
      return {};
    }
    return unescape_value(line.substr(space + 1));
  }
  bool boolean(const char* name) { return text(name) == "1"; }
  double real(const char* name) {
    const std::string value = text(name);
    return ok_ ? std::strtod(value.c_str(), nullptr) : 0.0;
  }
  std::uint64_t u64(const char* name) {
    const std::string value = text(name);
    return ok_ ? std::strtoull(value.c_str(), nullptr, 10) : 0;
  }
  std::int64_t i64(const char* name) {
    const std::string value = text(name);
    return ok_ ? std::strtoll(value.c_str(), nullptr, 10) : 0;
  }

 private:
  std::istringstream stream_;
  bool ok_ = true;
};

void write_safety(RecordWriter& writer, const SafetyReport& safety) {
  writer.field("safety.verdict",
               std::string(safety.verdict == SafetyVerdict::safe
                               ? "safe"
                               : "not_provably_safe"));
  writer.field("safety.narrative", safety.narrative);
  writer.field("safety.checks", safety.checks.size());
  for (const MonotonicityReport& check : safety.checks) {
    writer.field("check.algebra", check.algebra_name);
    writer.field("check.mode",
                 std::string(check.mode == MonotonicityMode::strict
                                 ? "strict"
                                 : "plain"));
    writer.field("check.holds", check.holds);
    writer.field("check.pref", check.preference_constraint_count);
    writer.field("check.mono", check.monotonicity_constraint_count);
    writer.field("check.solve_ms", check.solve_time_ms);
    writer.field("check.script", check.yices_script);
    writer.field("check.model", check.model.values.size());
    for (const auto& [name, value] : check.model.values) {
      writer.field("model.name", name);
      writer.field("model.value", value);
    }
    writer.field("check.core", check.unsat_core.size());
    for (const ConstraintProvenance& entry : check.unsat_core) {
      writer.field("core.kind",
                   std::string(entry.kind ==
                                       ConstraintProvenance::Kind::preference
                                   ? "preference"
                                   : "monotonicity"));
      writer.field("core.desc", entry.description);
      writer.field("core.constraint", entry.constraint);
    }
  }
}

bool read_safety(RecordReader& reader, SafetyReport& safety) {
  const std::string verdict = reader.text("safety.verdict");
  safety.verdict = verdict == "safe" ? SafetyVerdict::safe
                                     : SafetyVerdict::not_provably_safe;
  safety.narrative = reader.text("safety.narrative");
  const std::uint64_t checks = reader.u64("safety.checks");
  if (!reader.ok() || checks > 1u << 16) return false;
  safety.checks.resize(checks);
  for (MonotonicityReport& check : safety.checks) {
    check.algebra_name = reader.text("check.algebra");
    check.mode = reader.text("check.mode") == "strict"
                     ? MonotonicityMode::strict
                     : MonotonicityMode::plain;
    check.holds = reader.boolean("check.holds");
    check.preference_constraint_count =
        static_cast<std::size_t>(reader.u64("check.pref"));
    check.monotonicity_constraint_count =
        static_cast<std::size_t>(reader.u64("check.mono"));
    check.solve_time_ms = reader.real("check.solve_ms");
    check.yices_script = reader.text("check.script");
    const std::uint64_t model_entries = reader.u64("check.model");
    if (!reader.ok() || model_entries > 1u << 20) return false;
    for (std::uint64_t i = 0; i < model_entries; ++i) {
      const std::string name = reader.text("model.name");
      check.model.values[name] = reader.i64("model.value");
    }
    const std::uint64_t core_entries = reader.u64("check.core");
    if (!reader.ok() || core_entries > 1u << 20) return false;
    check.unsat_core.resize(core_entries);
    for (ConstraintProvenance& entry : check.unsat_core) {
      entry.kind = reader.text("core.kind") == "preference"
                       ? ConstraintProvenance::Kind::preference
                       : ConstraintProvenance::Kind::monotonicity;
      entry.description = reader.text("core.desc");
      entry.constraint = reader.text("core.constraint");
    }
  }
  return reader.ok();
}

void write_emulation(RecordWriter& writer, const EmulationResult& emu) {
  writer.field("emu.quiesced", emu.quiesced);
  writer.field("emu.convergence", static_cast<std::int64_t>(emu.convergence_time));
  writer.field("emu.end", static_cast<std::int64_t>(emu.end_time));
  writer.field("emu.messages", emu.messages);
  writer.field("emu.bytes", emu.bytes);
  writer.field("emu.route_changes", emu.route_changes);
  writer.field("emu.nodes", emu.node_count);
  writer.field("emu.stats_bucket", static_cast<std::int64_t>(emu.stats_bucket));
  writer.field("emu.series", emu.bandwidth_series_mbps.size());
  for (const double value : emu.bandwidth_series_mbps) {
    writer.field("series", value);
  }
  writer.field("emu.routes", emu.best_routes.size());
  for (const auto& [node, route] : emu.best_routes) {
    writer.field("route.node", node);
    writer.field("route.sig", route.first);
    writer.field("route.hops", route.second.size());
    for (const std::string& hop : route.second) {
      writer.field("hop", hop);
    }
  }
}

bool read_emulation(RecordReader& reader, EmulationResult& emu) {
  emu.quiesced = reader.boolean("emu.quiesced");
  emu.convergence_time = reader.i64("emu.convergence");
  emu.end_time = reader.i64("emu.end");
  emu.messages = reader.u64("emu.messages");
  emu.bytes = reader.u64("emu.bytes");
  emu.route_changes = reader.u64("emu.route_changes");
  emu.node_count = static_cast<std::size_t>(reader.u64("emu.nodes"));
  emu.stats_bucket = reader.i64("emu.stats_bucket");
  const std::uint64_t series = reader.u64("emu.series");
  if (!reader.ok() || series > 1u << 24) return false;
  emu.bandwidth_series_mbps.resize(series);
  for (double& value : emu.bandwidth_series_mbps) {
    value = reader.real("series");
  }
  const std::uint64_t routes = reader.u64("emu.routes");
  if (!reader.ok() || routes > 1u << 20) return false;
  for (std::uint64_t i = 0; i < routes; ++i) {
    const std::string node = reader.text("route.node");
    const std::string sig = reader.text("route.sig");
    const std::uint64_t hops = reader.u64("route.hops");
    if (!reader.ok() || hops > 1u << 16) return false;
    std::vector<std::string> path(hops);
    for (std::string& hop : path) hop = reader.text("hop");
    emu.best_routes[node] = {sig, std::move(path)};
  }
  return reader.ok();
}

void write_sim(RecordWriter& writer, const sim::SimResult& sim_result) {
  writer.field("sim.scenario", sim_result.scenario);
  writer.field("sim.suppression", sim_result.suppression);
  writer.field("sim.converged", sim_result.converged);
  writer.field("sim.oscillating", sim_result.oscillating);
  writer.field("sim.cutoff", sim_result.cutoff);
  writer.field("sim.steps", sim_result.steps);
  writer.field("sim.ticks", sim_result.ticks);
  writer.field("sim.messages", sim_result.messages);
  writer.field("sim.route_changes", sim_result.route_changes);
  writer.field("sim.convergence_tick", sim_result.convergence_tick);
  writer.field("sim.cycle_length", sim_result.cycle_length);
  writer.field("sim.stable", sim_result.fixed_point_stable);
  writer.field("sim.assignment", sim_result.final_assignment.size());
  for (const auto& [node, path] : sim_result.final_assignment) {
    writer.field("assign.node", node);
    writer.field("assign.hops", path.size());
    for (const std::string& hop : path) writer.field("hop", hop);
  }
}

bool read_sim(RecordReader& reader, sim::SimResult& sim_result) {
  sim_result.scenario = reader.text("sim.scenario");
  sim_result.suppression = reader.text("sim.suppression");
  sim_result.converged = reader.boolean("sim.converged");
  sim_result.oscillating = reader.boolean("sim.oscillating");
  sim_result.cutoff = reader.boolean("sim.cutoff");
  sim_result.steps = reader.u64("sim.steps");
  sim_result.ticks = reader.u64("sim.ticks");
  sim_result.messages = reader.u64("sim.messages");
  sim_result.route_changes = reader.u64("sim.route_changes");
  sim_result.convergence_tick = reader.u64("sim.convergence_tick");
  sim_result.cycle_length = reader.u64("sim.cycle_length");
  sim_result.fixed_point_stable = reader.boolean("sim.stable");
  const std::uint64_t entries = reader.u64("sim.assignment");
  if (!reader.ok() || entries > 1u << 20) return false;
  for (std::uint64_t i = 0; i < entries; ++i) {
    const std::string node = reader.text("assign.node");
    const std::uint64_t hops = reader.u64("assign.hops");
    if (!reader.ok() || hops > 1u << 16) return false;
    spp::Path path(hops);
    for (std::string& hop : path) hop = reader.text("hop");
    sim_result.final_assignment[node] = std::move(path);
  }
  return reader.ok();
}

void write_repair(RecordWriter& writer, const repair::RepairSummary& repair) {
  writer.field("repair.attempted", repair.attempted);
  writer.field("repair.solver_repaired", repair.solver_repaired);
  writer.field("repair.verified", repair.verified);
  writer.field("repair.gt_mode", repair.ground_truth_mode);
  writer.field("repair.oracle_budget", repair.oracle_budget);
  writer.field("repair.edit_count", repair.edit_count);
  writer.field("repair.edits", repair.edits.size());
  for (const std::string& edit : repair.edits) {
    writer.field("edit", edit);
  }
  writer.field("repair.candidates", repair.candidates_checked);
  writer.field("repair.checks", repair.solver_checks);
  writer.field("repair.error", repair.error);
}

bool read_repair(RecordReader& reader, repair::RepairSummary& repair) {
  repair.attempted = reader.boolean("repair.attempted");
  repair.solver_repaired = reader.boolean("repair.solver_repaired");
  repair.verified = reader.boolean("repair.verified");
  repair.ground_truth_mode = reader.text("repair.gt_mode");
  repair.oracle_budget = reader.text("repair.oracle_budget");
  repair.edit_count = static_cast<std::size_t>(reader.u64("repair.edit_count"));
  const std::uint64_t edits = reader.u64("repair.edits");
  if (!reader.ok() || edits > 1u << 16) return false;
  repair.edits.resize(edits);
  for (std::string& edit : repair.edits) edit = reader.text("edit");
  repair.candidates_checked =
      static_cast<std::size_t>(reader.u64("repair.candidates"));
  repair.solver_checks = static_cast<std::size_t>(reader.u64("repair.checks"));
  repair.error = reader.text("repair.error");
  return reader.ok();
}

}  // namespace

std::string serialize_outcome(const ScenarioOutcome& outcome) {
  RecordWriter writer;
  writer.field("kind", std::string(to_string(outcome.kind)));
  writer.field("error", outcome.error);
  writer.field("wall_ms", outcome.wall_ms);
  writer.field("has_safety", outcome.safety.has_value());
  if (outcome.safety.has_value()) write_safety(writer, *outcome.safety);
  writer.field("has_emulation", outcome.emulation.has_value());
  if (outcome.emulation.has_value()) {
    write_emulation(writer, *outcome.emulation);
  }
  writer.field("has_sim", outcome.sim.has_value());
  if (outcome.sim.has_value()) write_sim(writer, *outcome.sim);
  writer.field("has_repair", outcome.repair.has_value());
  if (outcome.repair.has_value()) write_repair(writer, *outcome.repair);
  return writer.take();
}

std::shared_ptr<const ScenarioOutcome> deserialize_outcome(
    const std::string& text) {
  RecordReader reader(text);
  auto outcome = std::make_shared<ScenarioOutcome>();
  const std::string kind = reader.text("kind");
  outcome->kind = kind == "emulation"    ? ScenarioKind::emulation
                  : kind == "simulation" ? ScenarioKind::simulation
                                         : ScenarioKind::safety;
  outcome->error = reader.text("error");
  outcome->wall_ms = reader.real("wall_ms");
  if (reader.boolean("has_safety")) {
    SafetyReport safety;
    if (!read_safety(reader, safety)) return nullptr;
    outcome->safety = std::move(safety);
  }
  if (reader.boolean("has_emulation")) {
    EmulationResult emulation;
    if (!read_emulation(reader, emulation)) return nullptr;
    outcome->emulation = std::move(emulation);
  }
  if (reader.boolean("has_sim")) {
    sim::SimResult sim_result;
    if (!read_sim(reader, sim_result)) return nullptr;
    outcome->sim = std::move(sim_result);
  }
  if (reader.boolean("has_repair")) {
    repair::RepairSummary repair;
    if (!read_repair(reader, repair)) return nullptr;
    outcome->repair = std::move(repair);
  }
  return reader.ok() ? outcome : nullptr;
}

namespace {

/// The sweep-order stamp of a record file, in file-clock ticks (the same
/// clock touch uses, so loaded stamps and in-process accesses interleave
/// correctly).
std::int64_t file_stamp(const std::filesystem::path& path) {
  std::error_code ec;
  const auto time = std::filesystem::last_write_time(path, ec);
  return ec ? 0 : time.time_since_epoch().count();
}

std::int64_t file_stamp_now() {
  return std::filesystem::file_time_type::clock::now()
      .time_since_epoch()
      .count();
}

}  // namespace

ResultCache::ResultCache(std::string directory, std::uint64_t max_bytes)
    : directory_(std::move(directory)), max_bytes_(max_bytes) {
  if (!directory_.empty()) {
    load_directory();
    const std::lock_guard<std::mutex> lock(mutex_);
    sweep_locked();
  }
}

void ResultCache::load_directory() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) return;  // unwritable: behave as an in-memory cache
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (ec) break;
    if (!entry.is_regular_file() || entry.path().extension() != ".outcome") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) continue;
    std::ostringstream text;
    text << in.rdbuf();
    const std::string record = text.str();
    // The first line after the header names the full cache key, so digest
    // collisions (two keys, one file name) load as the stored key only.
    const std::size_t header_end = record.find('\n');
    if (header_end == std::string::npos) continue;
    const std::string body = record.substr(header_end + 1);
    const std::size_t key_end = body.find('\n');
    if (key_end == std::string::npos ||
        body.compare(0, 4, "key ") != 0) {
      continue;
    }
    const std::string key = unescape_value(body.substr(4, key_end - 4));
    const std::string payload =
        std::string(k_record_header) + "\n" + body.substr(key_end + 1);
    auto outcome = deserialize_outcome(payload);
    if (outcome == nullptr) continue;
    entries_.emplace(key, std::move(outcome));
    const std::string digest = entry.path().stem().string();
    digest_of_key_.emplace(key, digest);
    DiskRecord disk_record;
    disk_record.bytes = record.size();
    disk_record.last_access = file_stamp(entry.path());
    disk_bytes_ += disk_record.bytes;
    disk_records_.emplace(digest, std::move(disk_record));
  }
}

void ResultCache::sweep_locked() {
  namespace fs = std::filesystem;
  if (max_bytes_ == 0) return;
  // A single over-sized record survives alone: deleting the only entry
  // would leave an empty cache that serves nothing at all.
  while (disk_bytes_ > max_bytes_ && disk_records_.size() > 1) {
    auto oldest = disk_records_.begin();
    for (auto it = disk_records_.begin(); it != disk_records_.end(); ++it) {
      if (it->second.last_access < oldest->second.last_access) oldest = it;
    }
    std::error_code ec;
    fs::remove(fs::path(directory_) / (oldest->first + ".outcome"), ec);
    disk_bytes_ -= oldest->second.bytes;
    ++evicted_files_;
    static obs::Counter& evicted_counter =
        obs::registry().counter("result_cache.evicted_files");
    evicted_counter.add(1);
    static obs::Gauge& bytes_gauge =
        obs::registry().gauge("result_cache.disk_bytes");
    bytes_gauge.set(static_cast<std::int64_t>(disk_bytes_));
    disk_records_.erase(oldest);
  }
}

std::int64_t ResultCache::next_stamp_locked() {
  access_clock_ = std::max(file_stamp_now(), access_clock_ + 1);
  return access_clock_;
}

void ResultCache::touch_locked(const std::string& digest) {
  const auto it = disk_records_.find(digest);
  if (it == disk_records_.end()) return;
  it->second.last_access = next_stamp_locked();
  // Persist the recency so the NEXT process's sweep order sees this
  // access too (best-effort; a read-only directory costs nothing).
  std::error_code ec;
  std::filesystem::last_write_time(
      std::filesystem::path(directory_) / (digest + ".outcome"),
      std::filesystem::file_time_type::clock::now(), ec);
}

std::shared_ptr<const ScenarioOutcome> ResultCache::find(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    static obs::Counter& miss_counter =
        obs::registry().counter("result_cache.misses");
    miss_counter.add(1);
    return nullptr;
  }
  ++hits_;
  static obs::Counter& hit_counter =
      obs::registry().counter("result_cache.hits");
  hit_counter.add(1);
  // Recency bookkeeping (and its per-hit metadata write) only matters to
  // the size-cap sweep; an uncapped cache keeps find() memory-only.
  if (!directory_.empty() && max_bytes_ != 0) {
    const auto digest_it = digest_of_key_.find(key);
    if (digest_it != digest_of_key_.end()) touch_locked(digest_it->second);
  }
  return it->second;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const ScenarioOutcome> outcome) {
  std::shared_ptr<const ScenarioOutcome> to_persist;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.emplace(key, std::move(outcome));
    if (!inserted || directory_.empty()) return;
    to_persist = it->second;
  }
  // Serialization and disk I/O happen outside the lock: outcomes are
  // immutable once inserted, and first-insertion-wins means only the
  // inserting caller reaches this point for a given key — so concurrent
  // workers' find()/insert() never stall on a slow filesystem.

  // Persist as <digest>.outcome with the full key recorded inside (see
  // load_directory); write-to-temp-then-rename keeps concurrent readers of
  // the directory from ever seeing a torn record.
  namespace fs = std::filesystem;
  const std::string record = serialize_outcome(*to_persist);
  const std::size_t header_end = record.find('\n');
  if (header_end == std::string::npos) return;
  std::string with_key = record.substr(0, header_end + 1);
  with_key += "key " + escape_value(key) + "\n";
  with_key += record.substr(header_end + 1);

  // The temp name is unique per process AND per write (pid + counter):
  // concurrent processes (or runners) sharing one cache directory must
  // never interleave writes into the same temp file, or the atomic-rename
  // guarantee would publish a torn record.
  static std::atomic<std::uint64_t> write_counter{0};
  const fs::path final_path =
      fs::path(directory_) / (content_digest(key) + ".outcome");
  const fs::path temp_path =
      fs::path(directory_) /
      (content_digest(key) + ".tmp." + std::to_string(::getpid()) + "." +
       std::to_string(write_counter.fetch_add(1)));
  std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
  if (!out) return;  // best-effort: unwritable directory degrades gracefully
  out << with_key;
  out.close();
  if (!out) return;
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) {
    fs::remove(temp_path, ec);
    return;
  }

  // Record the new file and enforce the size cap. The freshly written
  // record is stamped now, so the sweep sheds older (least recently
  // accessed) files first.
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string digest = content_digest(key);
  digest_of_key_.emplace(key, digest);
  const auto [record_it, record_inserted] =
      disk_records_.emplace(digest, DiskRecord{});
  if (record_inserted) {
    record_it->second.bytes = with_key.size();
    disk_bytes_ += with_key.size();
    static obs::Gauge& bytes_gauge =
        obs::registry().gauge("result_cache.disk_bytes");
    bytes_gauge.set(static_cast<std::int64_t>(disk_bytes_));
  }
  record_it->second.last_access = next_stamp_locked();
  sweep_locked();
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::disk_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return disk_bytes_;
}

std::uint64_t ResultCache::evicted_files() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evicted_files_;
}

}  // namespace fsr::campaign
