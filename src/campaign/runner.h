// Parallel campaign execution.
//
// The CampaignRunner expands scenario sources, deduplicates scenarios by
// canonical content (and consults its persistent ResultCache), then
// dispatches the remaining unique work through the fsr::api service façade
// (api/service.h): one AnalysisService per run owns the worker pool, and
// each service worker owns its solver sessions — the
// one-solver-session-per-worker invariant the runner used to enforce with
// hand-rolled threads now lives behind the API (see the
// thread-compatibility notes in fsr/safety_analyzer.h and smt/context.h).
//
// Determinism contract: every scenario's outcome is a pure function of its
// content and derived seed, results are reassembled in scenario order, and
// duplicate/cache bookkeeping happens in the sequential scheduling phase —
// so the report's deterministic fields (everything except wall-clock
// timings) are byte-identical for any thread count.
#ifndef FSR_CAMPAIGN_RUNNER_H
#define FSR_CAMPAIGN_RUNNER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "campaign/cache.h"
#include "campaign/report.h"
#include "campaign/scenario.h"
#include "campaign/scenario_source.h"
#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"

namespace fsr::campaign {

struct CampaignOptions {
  std::uint64_t seed = 1;
  int threads = 1;  // clamped to [1, scenario count]
  /// Consult/fill the persistent cross-run cache. In-run deduplication is
  /// always on.
  bool use_cache = true;
  /// Non-empty: back the result cache with this directory, reloading
  /// prior runs' outcomes at startup and persisting new ones (see
  /// campaign/cache.h). Warm runs render byte-identical reports to the
  /// cold runs that filled the directory.
  std::string cache_dir;
  /// Non-zero: cap the disk cache at this many bytes, evicting the
  /// least recently accessed records on overflow (fsr_campaign
  /// --cache-max-bytes; see ResultCache).
  std::uint64_t cache_max_bytes = 0;
  SafetyAnalyzer::Options analyzer;
  /// Base emulation options; each scenario overrides `.seed` with its own.
  EmulationOptions emulation;
  /// Base event-driven simulation options; each simulation scenario
  /// overrides `.seed` with its own (the churn scenario and step cap come
  /// from here, so a whole campaign simulates under one regime).
  sim::SimOptions sim;
  /// Run the repair engine on every not-provably-safe SPP safety scenario
  /// (fsr_campaign --repair). Repair is a follow-up RepairRequest through
  /// the same AnalysisService, seeded from the scenario's content digest;
  /// the service worker that answers it owns the solver sessions.
  bool attempt_repair = false;
  repair::RepairOptions repair;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options = {});

  /// Expands sources in order into a scenario list (sequential and
  /// deterministic; ids are prefixed by source names).
  std::vector<Scenario> generate(
      const std::vector<std::unique_ptr<ScenarioSource>>& sources) const;

  CampaignReport run(
      const std::vector<std::unique_ptr<ScenarioSource>>& sources);
  CampaignReport run_scenarios(std::vector<Scenario> scenarios);

  const CampaignOptions& options() const noexcept { return options_; }
  ResultCache& cache() noexcept { return cache_; }

 private:
  CampaignOptions options_;
  ResultCache cache_;  // disk-backed when options_.cache_dir is set
};

}  // namespace fsr::campaign

#endif  // FSR_CAMPAIGN_RUNNER_H
