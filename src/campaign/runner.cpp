#include "campaign/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <unordered_map>

#include "spp/translate.h"
#include "util/error.h"

namespace fsr::campaign {
namespace {

ScenarioOutcome execute_scenario(const Scenario& scenario,
                                 const SafetyAnalyzer& analyzer,
                                 const CampaignOptions& options) {
  ScenarioOutcome outcome;
  outcome.kind = scenario.kind;
  const auto start = std::chrono::steady_clock::now();
  if (scenario.kind == ScenarioKind::safety) {
    const algebra::AlgebraPtr algebra =
        scenario.algebra != nullptr ? scenario.algebra
                                    : spp::algebra_from_spp(*scenario.spp);
    outcome.safety = analyzer.analyze(*algebra);
    if (options.attempt_repair && scenario.spp != nullptr &&
        outcome.safety->verdict == SafetyVerdict::not_provably_safe) {
      // A repair failure must not discard the safety verdict already in
      // hand; it is recorded on the summary instead. The SPVP ground-truth
      // trials are seeded from the instance CONTENT, not the scenario seed,
      // so repair outcomes (like safety verdicts) are a pure function of
      // content and the cache/dedup machinery keeps collapsing duplicates.
      const std::uint64_t repair_seed = fnv1a64(canonical_spp(*scenario.spp));
      try {
        const repair::RepairEngine engine(options.repair);
        outcome.repair =
            repair::summarize(engine.repair(*scenario.spp, repair_seed));
      } catch (const std::exception& error) {
        repair::RepairSummary failed;
        failed.attempted = true;
        failed.error = error.what();
        outcome.repair = std::move(failed);
      }
    }
  } else {
    EmulationOptions emu_options = options.emulation;
    emu_options.seed = scenario.seed;
    outcome.emulation = scenario.spp != nullptr
                            ? emulate_spp(*scenario.spp, emu_options)
                            : emulate_gpv(*scenario.algebra, *scenario.topology,
                                          emu_options);
  }
  const auto stop = std::chrono::steady_clock::now();
  outcome.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return outcome;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignOptions options)
    // With the cache disabled, skip loading the directory too: find() and
    // insert() are never called, so a warm disk cache would be pure
    // wasted startup I/O.
    : options_(std::move(options)),
      cache_(options_.use_cache ? options_.cache_dir : std::string()) {
  if (options_.threads < 1) {
    throw InvalidArgument("campaign thread count must be >= 1");
  }
}

std::vector<Scenario> CampaignRunner::generate(
    const std::vector<std::unique_ptr<ScenarioSource>>& sources) const {
  std::vector<Scenario> scenarios;
  for (const auto& source : sources) {
    std::vector<Scenario> batch =
        source->generate(options_.seed, scenarios.size());
    for (Scenario& scenario : batch) {
      scenarios.push_back(std::move(scenario));
    }
  }
  return scenarios;
}

CampaignReport CampaignRunner::run(
    const std::vector<std::unique_ptr<ScenarioSource>>& sources) {
  return run_scenarios(generate(sources));
}

CampaignReport CampaignRunner::run_scenarios(std::vector<Scenario> scenarios) {
  CampaignReport report;
  report.campaign_seed = options_.seed;
  report.threads = options_.threads;
  report.results.resize(scenarios.size());

  // ---- sequential scheduling phase: canonicalize, dedup, consult cache --
  // All bookkeeping that affects the report's deterministic fields happens
  // here, before any worker runs.
  constexpr std::size_t k_no_representative =
      std::numeric_limits<std::size_t>::max();
  std::vector<std::string> keys(scenarios.size());
  std::vector<std::size_t> representative(scenarios.size(),
                                          k_no_representative);
  std::unordered_map<std::string, std::size_t> first_with_key;
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    ScenarioResult& result = report.results[i];
    result.id = scenario.id;
    result.source = scenario.source;
    result.kind = scenario.kind;
    result.seed = scenario.seed;
    validate_scenario(scenario);
    keys[i] = scenario_cache_key(scenario, options_.attempt_repair,
                                 options_.repair);
    result.content_id = content_digest(keys[i]);

    const auto [it, inserted] = first_with_key.emplace(keys[i], i);
    if (!inserted) {
      result.deduplicated = true;
      representative[i] = it->second;
      ++report.deduplicated_count;
      continue;
    }
    if (options_.use_cache) {
      if (auto cached = cache_.find(keys[i])) {
        result.cache_hit = true;
        result.outcome = std::move(cached);
        ++report.cache_hit_count;
        continue;
      }
    }
    work.push_back(i);
  }
  report.solved_count = work.size();

  // ---------------------- parallel phase: workers pull unique scenarios --
  std::vector<std::shared_ptr<const ScenarioOutcome>> outcomes(
      scenarios.size());
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    // Per-worker analyzer: SafetyAnalyzer is thread-compatible (stateless,
    // per-call solver instances), but owning one per worker keeps the
    // contract explicit and future-proofs stateful analyzer options.
    // Repair preserves the one-solver-session-per-worker invariant the
    // same way: each execute_scenario call constructs its RepairEngine and
    // (transitively) its private IncrementalSafetySession inside this
    // worker; nothing mutable crosses threads (audited 2026-07).
    const SafetyAnalyzer analyzer(options_.analyzer);
    while (true) {
      const std::size_t slot = next.fetch_add(1);
      if (slot >= work.size()) break;
      const std::size_t index = work[slot];
      auto outcome = std::make_shared<ScenarioOutcome>();
      try {
        *outcome = execute_scenario(scenarios[index], analyzer, options_);
      } catch (const std::exception& error) {
        outcome->kind = scenarios[index].kind;
        outcome->error = error.what();
      }
      outcomes[index] = std::move(outcome);  // disjoint slots; no lock
    }
  };

  const int thread_count = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(options_.threads), std::max<std::size_t>(
                                                      work.size(), 1)));
  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(thread_count));
    for (int i = 0; i < thread_count; ++i) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  // ------------------- sequential assembly: reattach duplicates, cache --
  for (const std::size_t index : work) {
    report.results[index].outcome = outcomes[index];
    report.total_wall_ms += outcomes[index]->wall_ms;
    if (options_.use_cache && outcomes[index]->error.empty()) {
      cache_.insert(keys[index], outcomes[index]);
    }
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (representative[i] != k_no_representative) {
      report.results[i].outcome = report.results[representative[i]].outcome;
    }
  }
  return report;
}

}  // namespace fsr::campaign
