#include "campaign/runner.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <unordered_map>
#include <utility>

#include "api/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "spp/translate.h"
#include "util/error.h"

namespace fsr::campaign {
namespace {

/// Maps campaign options onto the service façade's one options struct.
/// The campaign runner keeps its own scheduling (dedup, cache) and uses
/// the service purely as the execution backend.
api::ServiceOptions service_options(const CampaignOptions& options) {
  api::ServiceOptions service;
  service.threads = options.threads;
  service.analyzer = options.analyzer;
  service.repair = options.repair;
  service.emulation = options.emulation;
  service.sim = options.sim;
  return service;
}

/// The scenario's primary request: safety analysis, emulation, or an
/// event-driven simulation run.
api::Request primary_request(const Scenario& scenario,
                             const CampaignOptions& options) {
  if (scenario.kind == ScenarioKind::safety) {
    api::AnalyzeSafetyRequest request;
    // Prefer the algebra payload when both are present (translated SPP
    // scenarios carry only the instance).
    if (scenario.algebra != nullptr) {
      request.algebra = scenario.algebra;
    } else {
      request.spp = scenario.spp;
    }
    return request;
  }
  if (scenario.kind == ScenarioKind::simulation) {
    api::SimulateRequest request;
    request.spp = scenario.spp;
    request.seed = scenario.seed;
    // The churn regime and suppression policy are campaign-wide: every
    // simulation scenario runs under the one configuration from
    // CampaignOptions.sim.
    request.scenario = options.sim.scenario;
    request.suppression = options.sim.suppression;
    return request;
  }
  api::EmulateRequest request;
  request.seed = scenario.seed;
  if (scenario.spp != nullptr) {
    request.spp = scenario.spp;
  } else {
    request.algebra = scenario.algebra;
    request.topology = scenario.topology;
  }
  return request;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignOptions options)
    // With the cache disabled, skip loading the directory too: find() and
    // insert() are never called, so a warm disk cache would be pure
    // wasted startup I/O.
    : options_(std::move(options)),
      cache_(options_.use_cache ? options_.cache_dir : std::string(),
             options_.cache_max_bytes) {
  if (options_.threads < 1) {
    throw InvalidArgument("campaign thread count must be >= 1");
  }
}

std::vector<Scenario> CampaignRunner::generate(
    const std::vector<std::unique_ptr<ScenarioSource>>& sources) const {
  std::vector<Scenario> scenarios;
  for (const auto& source : sources) {
    std::vector<Scenario> batch =
        source->generate(options_.seed, scenarios.size());
    for (Scenario& scenario : batch) {
      scenarios.push_back(std::move(scenario));
    }
  }
  return scenarios;
}

CampaignReport CampaignRunner::run(
    const std::vector<std::unique_ptr<ScenarioSource>>& sources) {
  return run_scenarios(generate(sources));
}

CampaignReport CampaignRunner::run_scenarios(std::vector<Scenario> scenarios) {
  obs::Span span("campaign.run");
  span.arg("scenarios", scenarios.size());
  // Solver-effort provenance: registry deltas around the whole run. The
  // registry is process-global, so a campaign sharing its process with
  // other concurrent work would fold that work in — the CLIs run one
  // campaign per process, which is the supported reading.
  struct EffortFloor {
    obs::Counter& sat_queries = obs::registry().counter("sat.queries");
    obs::Counter& sat_conflicts = obs::registry().counter("sat.conflicts");
    obs::Counter& sat_decisions = obs::registry().counter("sat.decisions");
    obs::Counter& sat_propagations =
        obs::registry().counter("sat.propagations");
    obs::Counter& smt_checks = obs::registry().counter("smt.checks");
    obs::Counter& repair_checks =
        obs::registry().counter("repair.solver_checks");
  };
  static EffortFloor counters;
  SolverEffort floor;
  floor.sat_queries = counters.sat_queries.value();
  floor.sat_conflicts = counters.sat_conflicts.value();
  floor.sat_decisions = counters.sat_decisions.value();
  floor.sat_propagations = counters.sat_propagations.value();
  floor.smt_checks = counters.smt_checks.value();
  floor.repair_solver_checks = counters.repair_checks.value();

  CampaignReport report;
  report.campaign_seed = options_.seed;
  report.threads = options_.threads;
  report.results.resize(scenarios.size());

  // ---- sequential scheduling phase: canonicalize, dedup, consult cache --
  // All bookkeeping that affects the report's deterministic fields happens
  // here, before any request is submitted.
  constexpr std::size_t k_no_representative =
      std::numeric_limits<std::size_t>::max();
  std::vector<std::string> keys(scenarios.size());
  std::vector<std::size_t> representative(scenarios.size(),
                                          k_no_representative);
  std::unordered_map<std::string, std::size_t> first_with_key;
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& scenario = scenarios[i];
    ScenarioResult& result = report.results[i];
    result.id = scenario.id;
    result.source = scenario.source;
    result.kind = scenario.kind;
    result.seed = scenario.seed;
    validate_scenario(scenario);
    keys[i] = scenario_cache_key(scenario, options_.attempt_repair,
                                 options_.repair, options_.sim);
    result.content_id = content_digest(keys[i]);

    const auto [it, inserted] = first_with_key.emplace(keys[i], i);
    if (!inserted) {
      result.deduplicated = true;
      representative[i] = it->second;
      ++report.deduplicated_count;
      continue;
    }
    if (options_.use_cache) {
      if (auto cached = cache_.find(keys[i])) {
        result.cache_hit = true;
        result.outcome = std::move(cached);
        ++report.cache_hit_count;
        continue;
      }
    }
    work.push_back(i);
  }
  report.solved_count = work.size();

  // -------- parallel phase: dispatch unique scenarios through the API --
  // The service owns the worker pool (and, per worker, the solver-session
  // invariants the runner used to guarantee inline — see api/service.h).
  // Two waves keep repair requests content-gated exactly as before: the
  // primary wave answers safety/emulation, and every not-provably-safe SPP
  // safety scenario of a repair campaign gets a follow-up repair request
  // seeded from its content digest, so repair outcomes (like safety
  // verdicts) stay a pure function of content and the cache/dedup
  // machinery keeps collapsing duplicates.
  std::vector<std::shared_ptr<const ScenarioOutcome>> outcomes(
      scenarios.size());
  api::AnalysisService service(service_options(options_));
  std::vector<std::future<api::Response>> primary;
  primary.reserve(work.size());
  for (const std::size_t index : work) {
    primary.push_back(
        service.submit(primary_request(scenarios[index], options_)));
  }

  std::vector<std::pair<std::size_t, std::future<api::Response>>> followups;
  const auto consume_primary = [&](std::size_t slot) {
    const std::size_t index = work[slot];
    const Scenario& scenario = scenarios[index];
    const api::Response response = primary[slot].get();
    auto outcome = std::make_shared<ScenarioOutcome>();
    outcome->kind = scenario.kind;
    outcome->error = response.error;
    outcome->wall_ms = response.wall_ms;
    if (response.safety.has_value()) outcome->safety = response.safety;
    if (response.emulation.has_value()) {
      outcome->emulation = response.emulation;
    }
    if (response.sim.has_value()) outcome->sim = response.sim;
    if (options_.attempt_repair && response.error.empty() &&
        scenario.kind == ScenarioKind::safety && scenario.spp != nullptr &&
        outcome->safety.has_value() &&
        outcome->safety->verdict == SafetyVerdict::not_provably_safe) {
      api::RepairRequest request;
      request.spp = scenario.spp;
      request.seed = fnv1a64(canonical_spp(*scenario.spp));
      followups.emplace_back(index, service.submit(std::move(request)));
    }
    outcomes[index] = std::move(outcome);
  };
  // Consume primaries as they become READY, not in slot order: a slow
  // early scenario must not delay later scenarios' repair follow-ups (the
  // old in-worker repair overlapped freely, and so does this). Outcomes
  // are slotted by index, so consumption order never touches the report.
  std::vector<char> consumed(work.size(), 0);
  std::size_t remaining = work.size();
  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t slot = 0; slot < work.size(); ++slot) {
      if (consumed[slot] != 0 ||
          primary[slot].wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
        continue;
      }
      consume_primary(slot);
      consumed[slot] = 1;
      --remaining;
      progressed = true;
    }
    if (!progressed && remaining > 0) {
      // Nothing ready: block on the first outstanding primary instead of
      // spinning; any completion restarts the sweep.
      for (std::size_t slot = 0; slot < work.size(); ++slot) {
        if (consumed[slot] == 0) {
          primary[slot].wait();
          break;
        }
      }
    }
  }
  for (auto& [index, future] : followups) {
    const api::Response response = future.get();
    // A repair failure must not discard the safety verdict already in
    // hand; it is recorded on the summary instead.
    repair::RepairSummary summary;
    if (response.repair.has_value()) {
      summary = repair::summarize(*response.repair);
    } else {
      summary.attempted = true;
      summary.error = response.error;
    }
    auto patched = std::make_shared<ScenarioOutcome>(*outcomes[index]);
    patched->repair = std::move(summary);
    patched->wall_ms += response.wall_ms;
    outcomes[index] = std::move(patched);
  }

  // ------------------- sequential assembly: reattach duplicates, cache --
  for (const std::size_t index : work) {
    report.results[index].outcome = outcomes[index];
    report.total_wall_ms += outcomes[index]->wall_ms;
    if (options_.use_cache && outcomes[index]->error.empty()) {
      cache_.insert(keys[index], outcomes[index]);
    }
  }
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (representative[i] != k_no_representative) {
      report.results[i].outcome = report.results[representative[i]].outcome;
    }
  }

  report.effort.sat_queries = counters.sat_queries.value() - floor.sat_queries;
  report.effort.sat_conflicts =
      counters.sat_conflicts.value() - floor.sat_conflicts;
  report.effort.sat_decisions =
      counters.sat_decisions.value() - floor.sat_decisions;
  report.effort.sat_propagations =
      counters.sat_propagations.value() - floor.sat_propagations;
  report.effort.smt_checks = counters.smt_checks.value() - floor.smt_checks;
  report.effort.repair_solver_checks =
      counters.repair_checks.value() - floor.repair_solver_checks;

  static obs::Counter& scenario_counter =
      obs::registry().counter("campaign.scenarios");
  static obs::Counter& solved_counter =
      obs::registry().counter("campaign.solved");
  static obs::Counter& dedup_counter =
      obs::registry().counter("campaign.deduplicated");
  static obs::Counter& cache_hit_counter =
      obs::registry().counter("campaign.cache_hits");
  scenario_counter.add(scenarios.size());
  solved_counter.add(report.solved_count);
  dedup_counter.add(report.deduplicated_count);
  cache_hit_counter.add(report.cache_hit_count);

  span.arg("solved", report.solved_count);
  span.arg("cache_hits", report.cache_hit_count);
  span.arg("deduplicated", report.deduplicated_count);
  span.arg("smt_checks", report.effort.smt_checks);
  span.arg("sat_conflicts", report.effort.sat_conflicts);
  return report;
}

}  // namespace fsr::campaign
