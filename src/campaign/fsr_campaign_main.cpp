// fsr_campaign: run scenario campaigns from the command line.
//
//   fsr_campaign --source gadgets --source rocketfuel --threads 4
//   fsr_campaign --source all --emulate --format table --timings
//
// Default output is deterministic JSON on stdout: for a fixed campaign
// seed the bytes are identical for any --threads value (see
// campaign/report.h). --timings adds wall-clock data and breaks that
// property on purpose.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "groundtruth/engine.h"
#include "sim/simulator.h"
#include "obs/cli.h"
#include "obs/trace.h"
#include "util/error.h"

namespace {

void print_usage() {
  std::printf(
      "usage: fsr_campaign [options]\n"
      "  --source NAME    scenario source (repeatable); NAME is one of\n"
      "                   gadgets, rocketfuel, as-hierarchy, random-spp,\n"
      "                   policies, repair-targets, or 'all' (default: all)\n"
      "  --threads N      worker threads (default 1)\n"
      "  --seed S         campaign seed (default 1)\n"
      "  --format F       json | table (default json)\n"
      "  --timings        include wall-clock data (JSON output is then no\n"
      "                   longer byte-stable across runs)\n"
      "  --emulate        add emulation variants to the gadget source\n"
      "  --simulate       add event-driven simulation variants to the\n"
      "                   gadget, rocketfuel, and as-hierarchy sources\n"
      "                   (incl. the unsafe gadgets, whose runs report\n"
      "                   oscillation; topology sources simulate their\n"
      "                   extracted SPP instances)\n"
      "  --sim-scenario S churn scenario for simulation variants: steady\n"
      "                   (default) | staged | link-flap | session-reset\n"
      "  --sim-suppression P  advertisement-suppression policy for\n"
      "                   simulation variants: none (default) |\n"
      "                   split-horizon | poisoned-reverse\n"
      "  --hierarchy-depth N  override the as-hierarchy source's depth\n"
      "                   sweep with N (repeatable; larger depths grow the\n"
      "                   topology geometrically)\n"
      "  --repair         run the repair engine on every not-provably-safe\n"
      "                   SPP scenario; adds repair data to the report\n"
      "  --repair-max-edits K  edit-size cap for repair candidates "
      "(default 2)\n"
      "  --ground-truth M ground-truth oracle for repair validation:\n"
      "                   sat-search (default; conflict-driven, exact far\n"
      "                   beyond the enumeration cap) | enumerate\n"
      "  --no-cache       disable the cross-run result cache\n"
      "  --cache-dir DIR  persist the result cache under DIR and reload it\n"
      "                   at startup (warm runs skip solved scenarios and\n"
      "                   render byte-identical JSON)\n"
      "  --cache-max-bytes N  cap the disk cache at N bytes, evicting the\n"
      "                   least recently accessed records on overflow\n"
      "%s"
      "  --list-sources   print available sources and exit\n"
      "  --help           this message\n"
      "exit status: 0 on success, 1 on fatal errors, 2 on usage errors,\n"
      "3 when any scenario failed internally (its error is in the report)\n",
      fsr::obs::diagnostics_usage());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsr::campaign;

  CampaignOptions options;
  std::vector<std::string> source_names;
  std::string format = "json";
  fsr::obs::DiagnosticsCliOptions diagnostics;
  bool timings = false;
  bool emulate = false;
  bool simulate = false;
  std::vector<std::int32_t> hierarchy_depths;

  const auto need_value = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "fsr_campaign: %s requires a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (fsr::obs::consume_diagnostics_flag(argc, argv, i, "fsr_campaign",
                                           diagnostics)) {
      continue;
    }
    if (std::strcmp(arg, "--source") == 0) {
      source_names.emplace_back(need_value(i, "--source"));
    } else if (std::strcmp(arg, "--threads") == 0) {
      options.threads = std::atoi(need_value(i, "--threads"));
    } else if (std::strcmp(arg, "--seed") == 0) {
      options.seed = std::strtoull(need_value(i, "--seed"), nullptr, 10);
    } else if (std::strcmp(arg, "--format") == 0) {
      format = need_value(i, "--format");
    } else if (std::strcmp(arg, "--timings") == 0) {
      timings = true;
    } else if (std::strcmp(arg, "--emulate") == 0) {
      emulate = true;
    } else if (std::strcmp(arg, "--simulate") == 0) {
      simulate = true;
    } else if (std::strcmp(arg, "--sim-scenario") == 0) {
      options.sim.scenario = need_value(i, "--sim-scenario");
      if (!fsr::sim::is_scenario_name(options.sim.scenario)) {
        std::fprintf(stderr,
                     "fsr_campaign: --sim-scenario wants steady, staged, "
                     "link-flap, or session-reset\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--sim-suppression") == 0) {
      options.sim.suppression = need_value(i, "--sim-suppression");
      if (!fsr::sim::is_suppression_name(options.sim.suppression)) {
        std::fprintf(stderr,
                     "fsr_campaign: --sim-suppression wants none, "
                     "split-horizon, or poisoned-reverse\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--hierarchy-depth") == 0) {
      const int depth = std::atoi(need_value(i, "--hierarchy-depth"));
      if (depth < 1) {
        std::fprintf(stderr,
                     "fsr_campaign: --hierarchy-depth needs a value >= 1\n");
        return 2;
      }
      hierarchy_depths.push_back(depth);
    } else if (std::strcmp(arg, "--repair") == 0) {
      options.attempt_repair = true;
    } else if (std::strcmp(arg, "--repair-max-edits") == 0) {
      const int max_edits = std::atoi(need_value(i, "--repair-max-edits"));
      if (max_edits < 1) {
        std::fprintf(stderr,
                     "fsr_campaign: --repair-max-edits needs a value >= 1\n");
        return 2;
      }
      options.repair.max_edits = static_cast<std::size_t>(max_edits);
    } else if (std::optional<fsr::groundtruth::Mode> mode;
               fsr::groundtruth::consume_mode_flag(argc, argv, i, mode)) {
      if (!mode.has_value()) {
        std::fprintf(stderr,
                     "fsr_campaign: --ground-truth needs a mode "
                     "(enumerate | sat-search)\n");
        return 2;
      }
      options.repair.ground_truth = *mode;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      options.cache_dir = need_value(i, "--cache-dir");
    } else if (std::strcmp(arg, "--cache-max-bytes") == 0) {
      options.cache_max_bytes =
          std::strtoull(need_value(i, "--cache-max-bytes"), nullptr, 10);
    } else if (std::strcmp(arg, "--list-sources") == 0) {
      for (const std::string& name : builtin_source_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (std::strcmp(arg, "--help") == 0) {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "fsr_campaign: unknown option '%s'\n", arg);
      print_usage();
      return 2;
    }
  }

  if (format != "json" && format != "table") {
    std::fprintf(stderr, "fsr_campaign: unknown format '%s'\n", format.c_str());
    return 2;
  }
  if (source_names.empty() ||
      (source_names.size() == 1 && source_names[0] == "all")) {
    source_names = builtin_source_names();
  }

  fsr::obs::set_thread_name("main");
  // Shared diagnostics stack (obs/cli.h): constructed before the runner's
  // service so the recorder outlives every worker thread.
  fsr::obs::DiagnosticsSession diagnostics_session(diagnostics,
                                                   "fsr_campaign");
  try {
    std::vector<std::unique_ptr<ScenarioSource>> sources;
    sources.reserve(source_names.size());
    for (const std::string& name : source_names) {
      sources.push_back(
          make_builtin_source(name, emulate, simulate, hierarchy_depths));
    }

    CampaignRunner runner(options);
    const CampaignReport report = runner.run(sources);
    // The runner's service (and its span-recording workers) is gone once
    // run() returns; write the diagnostics outputs before rendering so a
    // render error cannot lose them.
    if (!diagnostics_session.finalize()) return 1;

    if (format == "table") {
      std::fputs(render_table(report).c_str(), stdout);
    } else {
      JsonOptions json_options;
      json_options.include_timings = timings;
      std::fputs(to_json(report, json_options).c_str(), stdout);
    }

    // Internal scenario failures are recorded in the report (a failed
    // scenario never aborts the campaign), but the process must not claim
    // success: pipelines watch the exit status, not every error field.
    for (const ScenarioResult& result : report.results) {
      if (result.outcome != nullptr && !result.outcome->error.empty()) {
        std::fprintf(stderr, "fsr_campaign: scenario '%s' failed: %s\n",
                     result.id.c_str(), result.outcome->error.c_str());
        return 3;
      }
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fsr_campaign: %s\n", error.what());
    return 1;
  }
  return 0;
}
