// Campaign result aggregation and rendering.
//
// A CampaignReport collects every scenario's outcome (in scenario order,
// independent of which worker solved it) plus campaign-level aggregates:
// verdict counts per source, the unsat-core constraint frequency table
// (which policy constraints recur across failing configurations — the
// campaign-scale version of the paper's pinpointing workflow), solve-time
// histograms, and the slowest scenarios.
//
// Rendering contract: to_json() with default options emits ONLY
// deterministic fields — reports are byte-identical across runs for a
// fixed campaign seed, regardless of worker count AND regardless of cache
// temperature (a warm --cache-dir run matches the cold run that filled
// it). Wall-clock data and execution provenance (per-scenario solve
// times, cache_hit flags, solved/cache-hit counts, histogram, slowest
// table, thread count) are included only when JsonOptions.include_timings
// is set. The table renderer is human-facing and always shows both.
#ifndef FSR_CAMPAIGN_REPORT_H
#define FSR_CAMPAIGN_REPORT_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/scenario.h"

namespace fsr::campaign {

/// One scenario's slot in the report. `outcome` may be shared with other
/// results (duplicates and cache hits point at the representative's).
struct ScenarioResult {
  std::string id;
  std::string source;
  ScenarioKind kind = ScenarioKind::safety;
  std::uint64_t seed = 0;
  std::string content_id;     // 16-hex digest of the canonical content
  bool deduplicated = false;  // duplicate of an earlier scenario this run
  bool cache_hit = false;     // served from the runner's persistent cache
  std::shared_ptr<const ScenarioOutcome> outcome;
};

struct SourceSummary {
  std::size_t scenarios = 0;
  std::size_t safe = 0;
  std::size_t not_provably_safe = 0;
  std::size_t converged = 0;
  std::size_t diverged = 0;
  // Event-driven simulation aggregates (all zero unless the campaign ran
  // simulation scenarios). A run that hits its step cap counts in
  // sim_runs and sim_cutoff but in neither verdict bucket.
  std::size_t sim_runs = 0;
  std::size_t sim_converged = 0;
  std::size_t sim_oscillating = 0;
  std::size_t sim_cutoff = 0;
  // Repair campaign aggregates (all zero unless attempt_repair was on).
  std::size_t repairs_attempted = 0;
  std::size_t repaired = 0;         // solver found a safe edit set
  std::size_t repair_verified = 0;  // ...and ground truth confirmed it
};

struct CoreConstraintCount {
  std::string description;  // policy-level provenance text
  std::size_t count = 0;    // scenarios whose failing core contains it
};

/// Solver-effort registry deltas captured around one campaign run — how
/// much CDCL/SMT work the run actually bought. Execution provenance like
/// wall clocks (warm sessions carry learned clauses across requests), so
/// it renders only under JsonOptions.include_timings.
struct SolverEffort {
  std::uint64_t sat_queries = 0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_decisions = 0;
  std::uint64_t sat_propagations = 0;
  std::uint64_t smt_checks = 0;
  std::uint64_t repair_solver_checks = 0;
};

struct CampaignReport {
  std::uint64_t campaign_seed = 0;
  int threads = 1;  // wall-clock-affecting only; excluded from default JSON
  std::vector<ScenarioResult> results;
  std::size_t solved_count = 0;      // scenarios actually executed
  std::size_t deduplicated_count = 0;
  std::size_t cache_hit_count = 0;
  double total_wall_ms = 0.0;
  SolverEffort effort;

  /// Verdict counts per source, in first-appearance order.
  std::vector<std::pair<std::string, SourceSummary>> per_source() const;
  SourceSummary totals() const;
  /// Failing-core constraint frequencies, sorted by count desc then text.
  std::vector<CoreConstraintCount> core_frequencies() const;
  /// Power-of-two solve-time histogram: bucket i counts outcomes with
  /// wall_ms in [2^(i-1), 2^i) ms (bucket 0: < 1 ms).
  std::vector<std::size_t> solve_time_histogram() const;
  /// Bucket k counts successfully repaired scenarios whose best candidate
  /// has k edits (bucket 0 stays 0; minimal repairs start at one edit).
  /// Empty when no scenario was repaired.
  std::vector<std::size_t> repair_edit_size_histogram() const;
  /// Power-of-two message-count distribution over simulation outcomes:
  /// bucket i counts runs with messages in [2^(i-1), 2^i) (bucket 0: zero
  /// messages). Deterministic — message counts are pure functions of
  /// (content, seed) — so it renders in the default JSON, and duplicates /
  /// cache hits count like the run that produced their shared outcome.
  /// A non-empty `source` restricts the tally to that source's scenarios —
  /// the per-source distributions rendered inside each per_source object.
  std::vector<std::size_t> sim_message_histogram(
      const std::string& source = {}) const;
  /// Same shape over activation steps, restricted to converged runs — the
  /// campaign-scale convergence-time distribution (same optional
  /// per-source restriction).
  std::vector<std::size_t> sim_convergence_step_histogram(
      const std::string& source = {}) const;
  /// Indices into `results` of the `limit` slowest executed scenarios.
  std::vector<std::size_t> slowest(std::size_t limit = 5) const;
};

struct JsonOptions {
  bool include_timings = false;
};

std::string to_json(const CampaignReport& report, JsonOptions options = {});

/// Paper-style fixed-width table (bench_util style) for terminals.
std::string render_table(const CampaignReport& report);

}  // namespace fsr::campaign

#endif  // FSR_CAMPAIGN_REPORT_H
