#include "campaign/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "util/strings.h"

namespace fsr::campaign {
namespace {

std::string quoted(const std::string& text) { return util::json_quoted(text); }

std::string fixed3(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

bool executed(const ScenarioResult& result) {
  return !result.deduplicated && !result.cache_hit && result.outcome != nullptr;
}

/// Power-of-two bucket index for counters: 0 -> 0, and bucket i (i >= 1)
/// covers [2^(i-1), 2^i). The integer sibling of the wall-ms bucketing in
/// solve_time_histogram().
std::size_t pow2_bucket(std::uint64_t value) {
  std::size_t bucket = 0;
  while (value > 0) {
    ++bucket;
    value >>= 1;
  }
  return bucket;
}

const char* safety_verdict_text(const SafetyReport& report) {
  return report.verdict == SafetyVerdict::safe ? "safe" : "not_provably_safe";
}

void append_scenario_json(std::string& out, const ScenarioResult& result,
                          const JsonOptions& options, const char* indent) {
  out += indent;
  out += "{\"id\": " + quoted(result.id) +
         ", \"source\": " + quoted(result.source) +
         ", \"kind\": " + quoted(to_string(result.kind)) +
         ", \"seed\": " + quoted(std::to_string(result.seed)) +
         ", \"content\": " + quoted(result.content_id) +
         ", \"deduplicated\": " + (result.deduplicated ? "true" : "false");
  if (options.include_timings) {
    // Cache provenance is execution metadata, like wall-clock time: a warm
    // run's deterministic fields must match the cold run that filled the
    // cache, so the flag is timings-gated.
    out += std::string(", \"cache_hit\": ") +
           (result.cache_hit ? "true" : "false");
  }
  const ScenarioOutcome* outcome = result.outcome.get();
  if (outcome != nullptr && !outcome->error.empty()) {
    out += ", \"verdict\": \"error\", \"error\": " + quoted(outcome->error);
  }
  if (outcome != nullptr && outcome->safety.has_value()) {
    const SafetyReport& safety = *outcome->safety;
    out += ", \"verdict\": " + quoted(safety_verdict_text(safety));
    out += ", \"checks\": [";
    for (std::size_t i = 0; i < safety.checks.size(); ++i) {
      const MonotonicityReport& check = safety.checks[i];
      if (i > 0) out += ", ";
      out += "{\"algebra\": " + quoted(check.algebra_name) + ", \"mode\": " +
             quoted(check.mode == MonotonicityMode::strict ? "strict"
                                                           : "plain") +
             ", \"holds\": " + (check.holds ? "true" : "false") +
             ", \"preference_constraints\": " +
             std::to_string(check.preference_constraint_count) +
             ", \"monotonicity_constraints\": " +
             std::to_string(check.monotonicity_constraint_count);
      if (!check.holds && !check.unsat_core.empty()) {
        out += ", \"core\": [";
        for (std::size_t j = 0; j < check.unsat_core.size(); ++j) {
          if (j > 0) out += ", ";
          out += quoted(check.unsat_core[j].description);
        }
        out += "]";
      }
      out += "}";
    }
    out += "]";
  }
  if (outcome != nullptr && outcome->repair.has_value()) {
    const repair::RepairSummary& repair = *outcome->repair;
    out += ", \"repair\": {\"solver_repaired\": ";
    out += repair.solver_repaired ? "true" : "false";
    out += ", \"verified\": ";
    out += repair.verified ? "true" : "false";
    if (!repair.ground_truth_mode.empty()) {
      out += ", \"ground_truth_mode\": " + quoted(repair.ground_truth_mode);
    }
    if (!repair.oracle_budget.empty()) {
      out += ", \"oracle_budget\": " + quoted(repair.oracle_budget);
    }
    out += ", \"edit_count\": " + std::to_string(repair.edit_count) +
           ", \"edits\": [";
    for (std::size_t j = 0; j < repair.edits.size(); ++j) {
      if (j > 0) out += ", ";
      out += quoted(repair.edits[j]);
    }
    out += "], \"candidates\": " + std::to_string(repair.candidates_checked) +
           ", \"checks\": " + std::to_string(repair.solver_checks);
    if (!repair.error.empty()) out += ", \"error\": " + quoted(repair.error);
    out += "}";
  }
  if (outcome != nullptr && outcome->sim.has_value()) {
    // Every simulation field is deterministic in (content, seed), so the
    // whole block lives in the default JSON — nothing is timings-gated.
    const sim::SimResult& sim = *outcome->sim;
    out += ", \"verdict\": ";
    out += sim.converged     ? quoted("converged")
           : sim.oscillating ? quoted("oscillating")
                             : quoted("cutoff");
    out += ", \"sim_scenario\": " + quoted(sim.scenario) +
           ", \"sim_suppression\": " + quoted(sim.suppression) +
           ", \"steps\": " + std::to_string(sim.steps) +
           ", \"ticks\": " + std::to_string(sim.ticks) +
           ", \"messages\": " + std::to_string(sim.messages) +
           ", \"route_changes\": " + std::to_string(sim.route_changes);
    if (sim.converged) {
      out += ", \"convergence_tick\": " +
             std::to_string(sim.convergence_tick) +
             std::string(", \"fixed_point_stable\": ") +
             (sim.fixed_point_stable ? "true" : "false");
    }
    if (sim.oscillating) {
      out += ", \"cycle_length\": " + std::to_string(sim.cycle_length);
    }
  }
  if (outcome != nullptr && outcome->emulation.has_value()) {
    const EmulationResult& emu = *outcome->emulation;
    out += ", \"verdict\": ";
    out += emu.quiesced ? quoted("converged") : quoted("diverged");
    out += ", \"convergence_time_us\": " +
           std::to_string(emu.convergence_time) +
           ", \"end_time_us\": " + std::to_string(emu.end_time) +
           ", \"messages\": " + std::to_string(emu.messages) +
           ", \"bytes\": " + std::to_string(emu.bytes) +
           ", \"route_changes\": " + std::to_string(emu.route_changes) +
           ", \"nodes\": " + std::to_string(emu.node_count);
  }
  if (options.include_timings && outcome != nullptr) {
    out += ", \"wall_ms\": " + fixed3(outcome->wall_ms);
  }
  out += "}";
}

/// The comma-separated fields of a summary object, WITHOUT braces — the
/// call sites wrap them (the per-source objects prepend a "source" field).
std::string summary_json_fields(const SourceSummary& summary, bool with_sim,
                                bool with_repair) {
  std::string out = "\"scenarios\": " + std::to_string(summary.scenarios) +
                    ", \"safe\": " + std::to_string(summary.safe) +
                    ", \"not_provably_safe\": " +
                    std::to_string(summary.not_provably_safe) +
                    ", \"converged\": " + std::to_string(summary.converged) +
                    ", \"diverged\": " + std::to_string(summary.diverged);
  if (with_sim) {
    out += ", \"sim_runs\": " + std::to_string(summary.sim_runs) +
           ", \"sim_converged\": " + std::to_string(summary.sim_converged) +
           ", \"sim_oscillating\": " +
           std::to_string(summary.sim_oscillating) +
           ", \"sim_cutoff\": " + std::to_string(summary.sim_cutoff);
  }
  if (with_repair) {
    out += ", \"repairs_attempted\": " +
           std::to_string(summary.repairs_attempted) +
           ", \"repaired\": " + std::to_string(summary.repaired) +
           ", \"repair_verified\": " + std::to_string(summary.repair_verified);
  }
  return out;
}

void tally(SourceSummary& summary, const ScenarioResult& result) {
  ++summary.scenarios;
  const ScenarioOutcome* outcome = result.outcome.get();
  if (outcome == nullptr) return;
  if (outcome->safety.has_value()) {
    if (outcome->safety->verdict == SafetyVerdict::safe) {
      ++summary.safe;
    } else {
      ++summary.not_provably_safe;
    }
  }
  if (outcome->emulation.has_value()) {
    if (outcome->emulation->quiesced) {
      ++summary.converged;
    } else {
      ++summary.diverged;
    }
  }
  if (outcome->sim.has_value()) {
    ++summary.sim_runs;
    if (outcome->sim->converged) ++summary.sim_converged;
    if (outcome->sim->oscillating) ++summary.sim_oscillating;
    if (outcome->sim->cutoff) ++summary.sim_cutoff;
  }
  if (outcome->repair.has_value()) {
    ++summary.repairs_attempted;
    if (outcome->repair->solver_repaired) ++summary.repaired;
    if (outcome->repair->verified) ++summary.repair_verified;
  }
}

}  // namespace

std::vector<std::pair<std::string, SourceSummary>> CampaignReport::per_source()
    const {
  std::vector<std::pair<std::string, SourceSummary>> out;
  for (const ScenarioResult& result : results) {
    auto it = std::find_if(out.begin(), out.end(), [&](const auto& entry) {
      return entry.first == result.source;
    });
    if (it == out.end()) {
      out.emplace_back(result.source, SourceSummary{});
      it = std::prev(out.end());
    }
    tally(it->second, result);
  }
  return out;
}

SourceSummary CampaignReport::totals() const {
  SourceSummary summary;
  for (const ScenarioResult& result : results) tally(summary, result);
  return summary;
}

std::vector<CoreConstraintCount> CampaignReport::core_frequencies() const {
  std::map<std::string, std::size_t> counts;
  for (const ScenarioResult& result : results) {
    if (result.outcome == nullptr || !result.outcome->safety.has_value()) {
      continue;
    }
    const auto* core = result.outcome->safety->failing_core();
    if (core == nullptr) continue;
    // Count each constraint once per scenario, however often it recurs
    // within that scenario's core.
    std::set<std::string> seen;
    for (const ConstraintProvenance& entry : *core) {
      if (seen.insert(entry.description).second) ++counts[entry.description];
    }
  }
  std::vector<CoreConstraintCount> out;
  out.reserve(counts.size());
  for (const auto& [description, count] : counts) {
    out.push_back(CoreConstraintCount{description, count});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.count != b.count ? a.count > b.count
                              : a.description < b.description;
  });
  return out;
}

std::vector<std::size_t> CampaignReport::solve_time_histogram() const {
  std::vector<std::size_t> buckets;
  for (const ScenarioResult& result : results) {
    if (!executed(result)) continue;
    const double ms = result.outcome->wall_ms;
    const std::size_t bucket =
        ms < 1.0 ? 0
                 : static_cast<std::size_t>(std::floor(std::log2(ms))) + 1;
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  return buckets;
}

std::vector<std::size_t> CampaignReport::repair_edit_size_histogram() const {
  std::vector<std::size_t> buckets;
  for (const ScenarioResult& result : results) {
    if (result.outcome == nullptr || !result.outcome->repair.has_value()) {
      continue;
    }
    const repair::RepairSummary& repair = *result.outcome->repair;
    if (!repair.solver_repaired) continue;
    if (repair.edit_count >= buckets.size()) {
      buckets.resize(repair.edit_count + 1, 0);
    }
    ++buckets[repair.edit_count];
  }
  return buckets;
}

std::vector<std::size_t> CampaignReport::sim_message_histogram(
    const std::string& source) const {
  std::vector<std::size_t> buckets;
  for (const ScenarioResult& result : results) {
    if (result.outcome == nullptr || !result.outcome->sim.has_value() ||
        (!source.empty() && result.source != source)) {
      continue;
    }
    const std::size_t bucket = pow2_bucket(result.outcome->sim->messages);
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  return buckets;
}

std::vector<std::size_t> CampaignReport::sim_convergence_step_histogram(
    const std::string& source) const {
  std::vector<std::size_t> buckets;
  for (const ScenarioResult& result : results) {
    if (result.outcome == nullptr || !result.outcome->sim.has_value() ||
        !result.outcome->sim->converged ||
        (!source.empty() && result.source != source)) {
      continue;
    }
    const std::size_t bucket = pow2_bucket(result.outcome->sim->steps);
    if (bucket >= buckets.size()) buckets.resize(bucket + 1, 0);
    ++buckets[bucket];
  }
  return buckets;
}

std::vector<std::size_t> CampaignReport::slowest(std::size_t limit) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (executed(results[i])) indices.push_back(i);
  }
  std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
    const double wa = results[a].outcome->wall_ms;
    const double wb = results[b].outcome->wall_ms;
    return wa != wb ? wa > wb : a < b;
  });
  if (indices.size() > limit) indices.resize(limit);
  return indices;
}

std::string to_json(const CampaignReport& report, JsonOptions options) {
  std::string out = "{\n";
  // "solved" and "cache_hits" are execution provenance — a warm cached run
  // solves nothing yet must render byte-identically to the cold run that
  // produced the outcomes — so they live in the timings section.
  out += "  \"campaign\": {\"seed\": " + quoted(std::to_string(
             report.campaign_seed)) +
         ", \"scenarios\": " + std::to_string(report.results.size()) +
         ", \"deduplicated\": " + std::to_string(report.deduplicated_count) +
         "},\n";
  const SourceSummary totals = report.totals();
  const bool with_sim = totals.sim_runs > 0;
  const bool with_repair = totals.repairs_attempted > 0;
  out += "  \"totals\": {" +
         summary_json_fields(totals, with_sim, with_repair) + "}";
  const auto append_counts = [](std::string& text,
                                const std::vector<std::size_t>& counts) {
    bool first_count = true;
    for (const std::size_t count : counts) {
      if (!first_count) text += ", ";
      first_count = false;
      text += std::to_string(count);
    }
  };
  out += ",\n  \"per_source\": [";
  bool first = true;
  for (const auto& [source, summary] : report.per_source()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"source\": " + quoted(source) + ", " +
           summary_json_fields(summary, with_sim, with_repair);
    if (summary.sim_runs > 0) {
      // Per-source distributions (deterministic, like the campaign-wide
      // ones below): how THIS source's simulated instances converge and
      // how chatty they are — the rocketfuel/as-hierarchy axes read these.
      out += ", \"sim_message_histogram_pow2\": [";
      append_counts(out, report.sim_message_histogram(source));
      out += "], \"sim_convergence_steps_histogram_pow2\": [";
      append_counts(out, report.sim_convergence_step_histogram(source));
      out += "]";
    }
    out += "}";
  }
  out += "],\n";
  if (with_sim) {
    // Both distributions are deterministic in (content, seed) — see
    // sim_message_histogram() — so, unlike the solve-time histogram, they
    // belong in the default byte-stable JSON.
    out += "  \"simulation_summary\": {\"runs\": " +
           std::to_string(totals.sim_runs) +
           ", \"converged\": " + std::to_string(totals.sim_converged) +
           ", \"oscillating\": " + std::to_string(totals.sim_oscillating) +
           ", \"cutoff\": " + std::to_string(totals.sim_cutoff) +
           ", \"message_histogram_pow2\": [";
    first = true;
    for (const std::size_t count : report.sim_message_histogram()) {
      if (!first) out += ", ";
      first = false;
      out += std::to_string(count);
    }
    out += "], \"convergence_steps_histogram_pow2\": [";
    first = true;
    for (const std::size_t count : report.sim_convergence_step_histogram()) {
      if (!first) out += ", ";
      first = false;
      out += std::to_string(count);
    }
    out += "]},\n";
  }
  out += "  \"core_frequency\": [";
  first = true;
  for (const CoreConstraintCount& entry : report.core_frequencies()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"constraint\": " + quoted(entry.description) +
           ", \"count\": " + std::to_string(entry.count) + "}";
  }
  out += "],\n";
  if (with_repair) {
    out += "  \"repair_summary\": {\"attempted\": " +
           std::to_string(totals.repairs_attempted) +
           ", \"repaired\": " + std::to_string(totals.repaired) +
           ", \"verified\": " + std::to_string(totals.repair_verified) +
           ", \"edit_size_histogram\": [";
    first = true;
    for (const std::size_t count : report.repair_edit_size_histogram()) {
      if (!first) out += ", ";
      first = false;
      out += std::to_string(count);
    }
    out += "]},\n";
  }
  out += "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    append_scenario_json(out, report.results[i], options, "    ");
    out += i + 1 < report.results.size() ? ",\n" : "\n";
  }
  out += "  ]";
  if (options.include_timings) {
    out += ",\n  \"timings\": {\"threads\": " + std::to_string(report.threads) +
           ", \"solved\": " + std::to_string(report.solved_count) +
           ", \"cache_hits\": " + std::to_string(report.cache_hit_count) +
           ", \"total_wall_ms\": " + fixed3(report.total_wall_ms) +
           ", \"histogram_pow2_ms\": [";
    first = true;
    for (const std::size_t count : report.solve_time_histogram()) {
      if (!first) out += ", ";
      first = false;
      out += std::to_string(count);
    }
    out += "], \"effort\": {\"sat_queries\": " +
           std::to_string(report.effort.sat_queries) +
           ", \"sat_conflicts\": " +
           std::to_string(report.effort.sat_conflicts) +
           ", \"sat_decisions\": " +
           std::to_string(report.effort.sat_decisions) +
           ", \"sat_propagations\": " +
           std::to_string(report.effort.sat_propagations) +
           ", \"smt_checks\": " + std::to_string(report.effort.smt_checks) +
           ", \"repair_solver_checks\": " +
           std::to_string(report.effort.repair_solver_checks) + "}";
    out += ", \"slowest\": [";
    first = true;
    for (const std::size_t index : report.slowest()) {
      if (!first) out += ", ";
      first = false;
      out += "{\"id\": " + quoted(report.results[index].id) +
             ", \"wall_ms\": " + fixed3(report.results[index].outcome->wall_ms) +
             "}";
    }
    out += "]}";
  }
  out += "\n}\n";
  return out;
}

std::string render_table(const CampaignReport& report) {
  char buf[256];
  std::string out;
  out += "==== FSR campaign report ====\n";
  std::snprintf(buf, sizeof(buf),
                "seed %llu | %zu scenarios | %zu solved | %zu deduplicated | "
                "%zu cache hits | %d threads | %.1f ms wall\n",
                static_cast<unsigned long long>(report.campaign_seed),
                report.results.size(), report.solved_count,
                report.deduplicated_count, report.cache_hit_count,
                report.threads, report.total_wall_ms);
  out += buf;

  const bool with_sim = report.totals().sim_runs > 0;
  const bool with_repair = report.totals().repairs_attempted > 0;
  std::string header_extra;
  if (with_sim) header_extra += "  sim conv/osc/runs";
  if (with_repair) header_extra += "  repaired/attempted";
  std::snprintf(buf, sizeof(buf), "%-16s%10s%8s%14s%10s%10s%s\n", "source",
                "scenarios", "safe", "not-provable", "converged", "diverged",
                header_extra.c_str());
  out += buf;
  const auto emit_row = [&](const std::string& source,
                            const SourceSummary& summary) {
    std::snprintf(buf, sizeof(buf), "%-16s%10zu%8zu%14zu%10zu%10zu",
                  source.c_str(), summary.scenarios, summary.safe,
                  summary.not_provably_safe, summary.converged,
                  summary.diverged);
    out += buf;
    if (with_sim) {
      std::snprintf(buf, sizeof(buf), "  %zu/%zu/%zu", summary.sim_converged,
                    summary.sim_oscillating, summary.sim_runs);
      out += buf;
    }
    if (with_repair) {
      std::snprintf(buf, sizeof(buf), "  %zu/%zu (%zu verified)",
                    summary.repaired, summary.repairs_attempted,
                    summary.repair_verified);
      out += buf;
    }
    out += "\n";
  };
  for (const auto& [source, summary] : report.per_source()) {
    emit_row(source, summary);
  }
  emit_row("TOTAL", report.totals());

  const auto message_histogram = report.sim_message_histogram();
  if (!message_histogram.empty()) {
    out += "\nsimulation message-count histogram (power-of-two buckets):\n";
    for (std::size_t i = 0; i < message_histogram.size(); ++i) {
      const std::uint64_t lo = i == 0 ? 0 : 1ull << (i - 1);
      const std::uint64_t hi = i == 0 ? 1 : 1ull << i;
      std::snprintf(buf, sizeof(buf), "  [%8llu, %8llu)  %zu\n",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi), message_histogram[i]);
      out += buf;
    }
  }

  const auto edit_histogram = report.repair_edit_size_histogram();
  if (!edit_histogram.empty()) {
    out += "\nrepair edit-size histogram (best candidate per scenario):\n";
    for (std::size_t k = 1; k < edit_histogram.size(); ++k) {
      std::snprintf(buf, sizeof(buf), "  %zu edit(s)  %zu\n", k,
                    edit_histogram[k]);
      out += buf;
    }
  }

  const auto cores = report.core_frequencies();
  if (!cores.empty()) {
    out += "\nmost frequent unsat-core constraints:\n";
    const std::size_t shown = std::min<std::size_t>(cores.size(), 10);
    for (std::size_t i = 0; i < shown; ++i) {
      std::snprintf(buf, sizeof(buf), "%6zux  %s\n", cores[i].count,
                    cores[i].description.c_str());
      out += buf;
    }
  }

  const auto histogram = report.solve_time_histogram();
  if (!histogram.empty()) {
    out += "\nsolve-time histogram (power-of-two ms buckets):\n";
    for (std::size_t i = 0; i < histogram.size(); ++i) {
      const double lo = i == 0 ? 0.0 : std::pow(2.0, static_cast<double>(i) - 1);
      const double hi = std::pow(2.0, static_cast<double>(i));
      std::snprintf(buf, sizeof(buf), "  [%8.1f, %8.1f) ms  %zu\n", lo, hi,
                    histogram[i]);
      out += buf;
    }
  }

  const auto slowest = report.slowest();
  if (!slowest.empty()) {
    out += "\nslowest scenarios:\n";
    for (const std::size_t index : slowest) {
      std::snprintf(buf, sizeof(buf), "  %10.2f ms  %s\n",
                    report.results[index].outcome->wall_ms,
                    report.results[index].id.c_str());
      out += buf;
    }
  }
  return out;
}

}  // namespace fsr::campaign
