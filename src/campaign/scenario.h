// Scenario model for the campaign engine.
//
// A campaign is a batch of independent analysis/emulation jobs ("scenarios")
// drawn from generators (see scenario_source.h) and executed by the
// CampaignRunner over a worker pool. A scenario is self-contained: it names
// its work (safety analysis of an algebra or SPP instance, or an emulation
// run) and carries a per-scenario seed derived deterministically from the
// campaign seed, so results are reproducible regardless of worker count or
// scheduling order.
#ifndef FSR_CAMPAIGN_SCENARIO_H
#define FSR_CAMPAIGN_SCENARIO_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "algebra/algebra.h"
#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "repair/repair_engine.h"
#include "sim/simulator.h"
#include "spp/spp.h"
#include "topology/topology.h"

namespace fsr::campaign {

enum class ScenarioKind { safety, emulation, simulation };

const char* to_string(ScenarioKind kind) noexcept;

/// One unit of campaign work. Exactly one of the following shapes:
///   * safety     + algebra             — analyze the algebra directly;
///   * safety     + spp                 — translate (Section III-B), analyze;
///   * emulation  + spp                 — emulate_spp under `seed`;
///   * emulation  + algebra + topology  — emulate_gpv under `seed`;
///   * simulation + spp                 — event-driven SPVP run under `seed`.
/// Payloads are shared immutable objects, so scenarios are cheap to copy
/// and safe to hand to worker threads.
struct Scenario {
  std::string id;      // unique within the campaign, e.g. "gadgets/bad"
  std::string source;  // name of the generating ScenarioSource
  ScenarioKind kind = ScenarioKind::safety;
  std::uint64_t seed = 0;  // per-scenario seed (see derive_scenario_seed)

  algebra::AlgebraPtr algebra;
  std::shared_ptr<const spp::SppInstance> spp;
  std::shared_ptr<const topology::Topology> topology;
};

/// Everything a worker produces for one scenario. Wall-clock time is the
/// only non-deterministic field; renderers exclude it unless timings are
/// requested explicitly.
struct ScenarioOutcome {
  ScenarioKind kind = ScenarioKind::safety;
  std::optional<SafetyReport> safety;
  std::optional<EmulationResult> emulation;
  /// Simulation scenarios: the event-driven run's digest — message count,
  /// activation steps, convergence tick, oscillation verdict. Fully
  /// deterministic in (content, seed), so it participates in the
  /// byte-stable JSON and the disk ResultCache like every other payload.
  std::optional<sim::SimResult> sim;
  /// Present when the campaign ran with attempt_repair and this scenario
  /// was an unsafe SPP safety scenario: the repair engine's digest. All
  /// fields are deterministic — the SPVP ground-truth trials are seeded
  /// from the instance's content digest — so repair data participates in
  /// the byte-stable JSON and duplicates still share one outcome.
  std::optional<repair::RepairSummary> repair;
  /// Non-empty when the scenario raised instead of completing; a failed
  /// scenario never aborts the campaign (or pollutes the cache).
  std::string error;
  double wall_ms = 0.0;
};

/// Throws fsr::InvalidArgument unless the scenario matches exactly one of
/// the four shapes documented on Scenario (so a malformed scenario fails
/// fast in the runner's scheduling phase instead of crashing a worker).
void validate_scenario(const Scenario& scenario);

/// 64-bit FNV-1a — the subsystem's one content-hash primitive, shared by
/// seed derivation and cache digests.
std::uint64_t fnv1a64(const std::string& text);

/// Derives the seed of scenario `ordinal` named `id` within a campaign:
/// a splitmix64 finalizer over the campaign seed and an FNV-1a hash of the
/// id. Depends only on (campaign_seed, id, ordinal) — never on thread
/// count, scheduling, or other scenarios.
std::uint64_t derive_scenario_seed(std::uint64_t campaign_seed,
                                   const std::string& id,
                                   std::uint64_t ordinal);

}  // namespace fsr::campaign

#endif  // FSR_CAMPAIGN_SCENARIO_H
