#include "campaign/scenario_source.h"

#include <algorithm>
#include <limits>
#include <map>

#include "algebra/standard_policies.h"
#include "spp/gadgets.h"
#include "topology/as_hierarchy.h"
#include "topology/rocketfuel.h"
#include "util/error.h"
#include "util/rng.h"

namespace fsr::campaign {
namespace {

Scenario make_scenario(std::string source, std::string id, ScenarioKind kind,
                       std::uint64_t campaign_seed, std::uint64_t ordinal) {
  Scenario scenario;
  scenario.source = std::move(source);
  scenario.id = std::move(id);
  scenario.kind = kind;
  scenario.seed = derive_scenario_seed(campaign_seed, scenario.id, ordinal);
  return scenario;
}

/// Fisher-Yates with an explicit draw per swap: unlike std::shuffle, the
/// number of engine draws is pinned down, so the permutation is stable for
/// a given standard library. (uniform_int_distribution's mapping is still
/// implementation-defined, as everywhere else in the generators — the
/// determinism contract is per-binary, not cross-stdlib.)
template <typename T>
void deterministic_shuffle(std::vector<T>& items, util::Rng& rng) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(items[i - 1], items[j]);
  }
}

/// All simple paths from `from` to the destination over `adjacency`, with
/// at most `max_edges` edges, capped at `max_paths` results.
void enumerate_paths(const std::map<std::string, std::vector<std::string>>&
                         adjacency,
                     const std::string& destination, spp::Path& prefix,
                     std::int32_t max_edges, std::size_t max_paths,
                     std::vector<spp::Path>& out) {
  if (out.size() >= max_paths) return;
  const std::string& here = prefix.back();
  if (here == destination) {
    out.push_back(prefix);
    return;
  }
  if (static_cast<std::int32_t>(prefix.size()) > max_edges) return;
  const auto it = adjacency.find(here);
  if (it == adjacency.end()) return;
  for (const std::string& next : it->second) {
    if (std::find(prefix.begin(), prefix.end(), next) != prefix.end()) continue;
    prefix.push_back(next);
    enumerate_paths(adjacency, destination, prefix, max_edges, max_paths, out);
    prefix.pop_back();
  }
}

/// The preference rule shared with proto/reference_pv's aggregate: `a`
/// outranks `b` when the algebra strictly prefers it, or when they are
/// equal/incomparable and `a` is structurally smaller — a deterministic
/// total refinement of the algebra's partial order.
bool outranks(const algebra::RoutingAlgebra& alg,
              const std::pair<algebra::Value, spp::Path>& a,
              const std::pair<algebra::Value, spp::Path>& b) {
  const algebra::Ordering order = alg.compare(a.first, b.first);
  if (order == algebra::Ordering::better) return true;
  if (order == algebra::Ordering::worse) return false;
  return a < b;
}

class GadgetSource final : public ScenarioSource {
 public:
  explicit GadgetSource(GadgetSweep sweep) : sweep_(std::move(sweep)) {}

  const std::string& name() const noexcept override { return name_; }

  std::vector<Scenario> generate(std::uint64_t campaign_seed,
                                 std::uint64_t ordinal_base) const override {
    std::vector<Scenario> out;
    const auto add = [&](spp::SppInstance instance, ScenarioKind kind) {
      const std::string suffix = kind == ScenarioKind::emulation
                                     ? "(emulated)"
                                 : kind == ScenarioKind::simulation
                                     ? "(simulated)"
                                     : "";
      Scenario scenario =
          make_scenario(name_, name_ + "/" + instance.name() + suffix, kind,
                        campaign_seed, ordinal_base + out.size());
      scenario.spp =
          std::make_shared<const spp::SppInstance>(std::move(instance));
      out.push_back(std::move(scenario));
    };
    add(spp::good_gadget(), ScenarioKind::safety);
    add(spp::bad_gadget(), ScenarioKind::safety);
    add(spp::disagree_gadget(), ScenarioKind::safety);
    add(spp::ibgp_figure3_gadget(), ScenarioKind::safety);
    add(spp::ibgp_figure3_fixed(), ScenarioKind::safety);
    for (const std::int32_t length : sweep_.chain_lengths) {
      spp::SppInstance chain = spp::good_gadget_chain(length);
      Scenario scenario = make_scenario(
          name_, name_ + "/" + chain.name() + "x" + std::to_string(length),
          ScenarioKind::safety, campaign_seed, ordinal_base + out.size());
      scenario.spp = std::make_shared<const spp::SppInstance>(std::move(chain));
      out.push_back(std::move(scenario));
    }
    if (sweep_.include_emulations) {
      add(spp::good_gadget(), ScenarioKind::emulation);
      add(spp::disagree_gadget(), ScenarioKind::emulation);
      add(spp::ibgp_figure3_fixed(), ScenarioKind::emulation);
    }
    if (sweep_.include_simulations) {
      // Unlike the emulation list, the unsafe gadgets are deliberately in:
      // BAD's oscillation (and DISAGREE's seed-dependent races) are the
      // whole point of the simulation axis.
      add(spp::good_gadget(), ScenarioKind::simulation);
      add(spp::bad_gadget(), ScenarioKind::simulation);
      add(spp::disagree_gadget(), ScenarioKind::simulation);
      add(spp::ibgp_figure3_gadget(), ScenarioKind::simulation);
      add(spp::ibgp_figure3_fixed(), ScenarioKind::simulation);
    }
    return out;
  }

 private:
  std::string name_ = "gadgets";
  GadgetSweep sweep_;
};

class RocketfuelSource final : public ScenarioSource {
 public:
  explicit RocketfuelSource(RocketfuelSweep sweep) : sweep_(std::move(sweep)) {}

  const std::string& name() const noexcept override { return name_; }

  std::vector<Scenario> generate(std::uint64_t campaign_seed,
                                 std::uint64_t ordinal_base) const override {
    std::vector<Scenario> out;
    for (const std::uint64_t seed : sweep_.seeds) {
      for (const bool embed : sweep_.embeddings) {
        for (const std::int32_t paths : sweep_.paths_per_egress) {
          topology::RocketfuelParams params;
          params.seed = seed;
          params.embed_gadget = embed;
          params.paths_per_egress = paths;
          topology::IbgpExperiment experiment =
              topology::build_rocketfuel_ibgp(params);
          const std::string id = name_ + "/seed" + std::to_string(seed) +
                                 (embed ? "+gadget" : "+clean") + "-ppe" +
                                 std::to_string(paths);
          Scenario scenario =
              make_scenario(name_, id, ScenarioKind::safety, campaign_seed,
                            ordinal_base + out.size());
          scenario.spp = std::make_shared<const spp::SppInstance>(
              std::move(experiment.instance));
          if (sweep_.include_simulations) {
            // The simulation variant shares the safety scenario's extracted
            // instance (same shared payload, distinct scenario seed); the
            // gadget-embedded members are the real-topology oscillation
            // workload.
            Scenario sim = make_scenario(name_, id + "(simulated)",
                                         ScenarioKind::simulation,
                                         campaign_seed,
                                         ordinal_base + out.size() + 1);
            sim.spp = scenario.spp;
            out.push_back(std::move(scenario));
            out.push_back(std::move(sim));
          } else {
            out.push_back(std::move(scenario));
          }
        }
      }
    }
    return out;
  }

 private:
  std::string name_ = "rocketfuel";
  RocketfuelSweep sweep_;
};

class AsHierarchySource final : public ScenarioSource {
 public:
  explicit AsHierarchySource(AsHierarchySweep sweep)
      : sweep_(std::move(sweep)) {}

  const std::string& name() const noexcept override { return name_; }

  std::vector<Scenario> generate(std::uint64_t campaign_seed,
                                 std::uint64_t ordinal_base) const override {
    std::vector<Scenario> out;
    struct SchemeChoice {
      topology::LabelScheme scheme;
      const char* tag;
    };
    std::vector<SchemeChoice> schemes;
    if (sweep_.include_business) {
      schemes.push_back({topology::LabelScheme::business, "gr-a"});
    }
    if (sweep_.include_business_hop_count) {
      schemes.push_back(
          {topology::LabelScheme::business_hop_count, "gr-a-hops"});
    }
    for (const std::int32_t depth : sweep_.depths) {
      for (const std::uint64_t seed : sweep_.seeds) {
        for (const SchemeChoice& choice : schemes) {
          topology::AsHierarchyParams params;
          params.depth = depth;
          params.seed = seed;
          topology::Topology topo =
              topology::generate_as_hierarchy(params, choice.scheme);
          const std::string id = name_ + "/depth" + std::to_string(depth) +
                                 "-seed" + std::to_string(seed) + "-" +
                                 choice.tag;
          Scenario scenario =
              make_scenario(name_, id, ScenarioKind::emulation, campaign_seed,
                            ordinal_base + out.size());
          scenario.algebra =
              choice.scheme == topology::LabelScheme::business
                  ? algebra::gao_rexford_guideline_a()
                  : algebra::gao_rexford_with_hop_count();
          if (sweep_.include_simulations) {
            // The simulator speaks SPP, not annotated topologies: extract
            // a concrete instance under the same policy before the
            // topology payload is moved into the emulation scenario.
            const std::int32_t max_edges =
                sweep_.sim_max_path_edges > 0 ? sweep_.sim_max_path_edges
                                              : depth + 4;
            spp::SppInstance extracted = spp_from_topology(
                topo.name, topo, *scenario.algebra, max_edges,
                static_cast<std::size_t>(sweep_.sim_max_candidates),
                static_cast<std::size_t>(sweep_.sim_paths_per_node));
            Scenario sim = make_scenario(name_, id + "(simulated)",
                                         ScenarioKind::simulation,
                                         campaign_seed,
                                         ordinal_base + out.size() + 1);
            sim.spp = std::make_shared<const spp::SppInstance>(
                std::move(extracted));
            scenario.topology =
                std::make_shared<const topology::Topology>(std::move(topo));
            out.push_back(std::move(scenario));
            out.push_back(std::move(sim));
          } else {
            scenario.topology =
                std::make_shared<const topology::Topology>(std::move(topo));
            out.push_back(std::move(scenario));
          }
        }
      }
    }
    return out;
  }

 private:
  std::string name_ = "as-hierarchy";
  AsHierarchySweep sweep_;
};

class RandomSppSource final : public ScenarioSource {
 public:
  explicit RandomSppSource(RandomSppSweep sweep) : sweep_(std::move(sweep)) {}

  const std::string& name() const noexcept override { return name_; }

  std::vector<Scenario> generate(std::uint64_t campaign_seed,
                                 std::uint64_t ordinal_base) const override {
    std::vector<Scenario> out;
    for (std::int32_t i = 0; i < sweep_.count; ++i) {
      const std::string id = name_ + "/instance" + std::to_string(i);
      Scenario scenario = make_scenario(name_, id, ScenarioKind::safety,
                                        campaign_seed, ordinal_base + out.size());
      // The generation seed IS the scenario seed, so the instance is a
      // pure function of (campaign seed, id, ordinal).
      scenario.spp = std::make_shared<const spp::SppInstance>(
          random_spp_instance("random-spp-" + std::to_string(i), scenario.seed,
                              sweep_));
      out.push_back(std::move(scenario));
    }
    return out;
  }

 private:
  std::string name_ = "random-spp";
  RandomSppSweep sweep_;
};

class StandardPolicySource final : public ScenarioSource {
 public:
  const std::string& name() const noexcept override { return name_; }

  std::vector<Scenario> generate(std::uint64_t campaign_seed,
                                 std::uint64_t ordinal_base) const override {
    const std::set<std::int64_t> classes = {10, 100, 1000};
    std::vector<Scenario> out;
    const auto add = [&](algebra::AlgebraPtr algebra) {
      Scenario scenario =
          make_scenario(name_, name_ + "/" + algebra->name(),
                        ScenarioKind::safety, campaign_seed,
                        ordinal_base + out.size());
      scenario.algebra = std::move(algebra);
      out.push_back(std::move(scenario));
    };
    add(algebra::gao_rexford_guideline_a());
    add(algebra::gao_rexford_guideline_b());
    add(algebra::backup_routing());
    add(algebra::bandwidth_classes(classes));
    add(algebra::widest_shortest(classes));
    add(algebra::gao_rexford_with_hop_count());
    return out;
  }

 private:
  std::string name_ = "policies";
};

class RepairTargetSource final : public ScenarioSource {
 public:
  explicit RepairTargetSource(RepairTargetSweep sweep)
      : sweep_(std::move(sweep)) {}

  const std::string& name() const noexcept override { return name_; }

  std::vector<Scenario> generate(std::uint64_t campaign_seed,
                                 std::uint64_t ordinal_base) const override {
    std::vector<Scenario> out;
    const auto add = [&](spp::SppInstance instance, const std::string& id) {
      Scenario scenario = make_scenario(name_, name_ + "/" + id,
                                        ScenarioKind::safety, campaign_seed,
                                        ordinal_base + out.size());
      scenario.spp =
          std::make_shared<const spp::SppInstance>(std::move(instance));
      out.push_back(std::move(scenario));
    };
    add(spp::bad_gadget(), "bad");
    add(spp::disagree_gadget(), "disagree");
    add(spp::ibgp_figure3_gadget(), "ibgp-figure3");
    for (const std::int32_t length : sweep_.bad_chain_lengths) {
      add(spp::bad_gadget_chain(length),
          "bad-chain-x" + std::to_string(length));
    }
    RandomSppSweep fuzz;
    fuzz.extra_edge_probability = 0.5;
    fuzz.paths_per_node = 4;
    for (std::int32_t i = 0; i < sweep_.random_count; ++i) {
      const std::string id = name_ + "/fuzz" + std::to_string(i);
      Scenario scenario = make_scenario(name_, id, ScenarioKind::safety,
                                        campaign_seed,
                                        ordinal_base + out.size());
      scenario.spp = std::make_shared<const spp::SppInstance>(
          random_spp_instance("repair-fuzz-" + std::to_string(i),
                              scenario.seed, fuzz));
      out.push_back(std::move(scenario));
    }
    return out;
  }

 private:
  std::string name_ = "repair-targets";
  RepairTargetSweep sweep_;
};

}  // namespace

spp::SppInstance random_spp_instance(std::string name, std::uint64_t seed,
                                     const RandomSppSweep& sweep) {
  util::Rng rng(seed);
  const auto node_count = static_cast<std::int32_t>(
      rng.uniform_int(sweep.min_nodes, sweep.max_nodes));

  std::vector<std::string> nodes;
  nodes.reserve(static_cast<std::size_t>(node_count));
  for (std::int32_t i = 1; i <= node_count; ++i) {
    // Built in two steps: GCC 12's -Wrestrict false-fires on
    // `"literal" + std::to_string(...)` under some inlining decisions.
    std::string node = "n";
    node += std::to_string(i);
    nodes.push_back(std::move(node));
  }

  spp::SppInstance instance(std::move(name));
  const std::string& destination = instance.destination();
  std::map<std::string, std::vector<std::string>> adjacency;
  const auto connect = [&](const std::string& u, const std::string& v) {
    if (instance.has_edge(u, v)) return;
    instance.add_edge(u, v);
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  };

  // Random spanning structure rooted at the destination keeps every node
  // reachable; extra edges create the path diversity that makes ranking
  // conflicts (and hence interesting verdicts) possible.
  for (std::int32_t i = 0; i < node_count; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const std::string& attach =
        i == 0 ? destination
               : (rng.chance(0.4)
                      ? destination
                      : nodes[static_cast<std::size_t>(
                            rng.uniform_int(0, i - 1))]);
    connect(nodes[ui], attach);
  }
  for (std::int32_t i = 0; i < node_count; ++i) {
    for (std::int32_t j = i + 1; j < node_count; ++j) {
      if (rng.chance(sweep.extra_edge_probability)) {
        connect(nodes[static_cast<std::size_t>(i)],
                nodes[static_cast<std::size_t>(j)]);
      }
    }
  }

  for (const std::string& node : nodes) {
    std::vector<spp::Path> candidates;
    spp::Path prefix = {node};
    enumerate_paths(adjacency, destination, prefix, sweep.max_path_length,
                    /*max_paths=*/64, candidates);
    if (candidates.empty()) {
      // Length cap starved this node; retry unbounded (a simple path
      // visits each node once, so node_count edges always suffice).
      enumerate_paths(adjacency, destination, prefix, node_count + 1,
                      /*max_paths=*/64, candidates);
    }
    deterministic_shuffle(candidates, rng);
    const auto keep = std::min<std::size_t>(
        candidates.size(), static_cast<std::size_t>(sweep.paths_per_node));
    for (std::size_t i = 0; i < keep; ++i) {
      instance.add_permitted_path(candidates[i]);
    }
  }
  return instance;
}

spp::SppInstance spp_from_topology(std::string name,
                                   const topology::Topology& topology,
                                   const algebra::RoutingAlgebra& algebra,
                                   std::int32_t max_path_edges,
                                   std::size_t max_candidates,
                                   std::size_t paths_per_node) {
  spp::SppInstance instance(std::move(name), topology.destination);
  std::map<std::string, std::vector<std::string>> adjacency;
  // from -> (to -> from's label towards to); one pass here instead of a
  // linear link scan per fold step (path_signature's label_of would make
  // extraction quadratic on hierarchy-scale topologies).
  std::map<std::string, std::map<std::string, algebra::Value>> labels;
  for (const topology::TopoLink& link : topology.links) {
    if (instance.has_edge(link.u, link.v)) continue;  // parallel links: first wins
    instance.add_edge(link.u, link.v);
    adjacency[link.u].push_back(link.v);
    adjacency[link.v].push_back(link.u);
    labels[link.u].emplace(link.v, link.label_uv);
    labels[link.v].emplace(link.u, link.label_vu);
  }

  // BFS hop distances to the destination: the enumerator only follows
  // edges that can still complete within the length budget, so the DFS
  // never wanders into branches with no destination in reach — without
  // this, top-tier nodes of a deep hierarchy explore exponentially many
  // dead ends before the candidate cap bites.
  std::map<std::string, std::int32_t> dist;
  {
    std::vector<std::string> frontier = {topology.destination};
    dist[topology.destination] = 0;
    while (!frontier.empty()) {
      std::vector<std::string> next_frontier;
      for (const std::string& here : frontier) {
        const auto it = adjacency.find(here);
        if (it == adjacency.end()) continue;
        for (const std::string& next : it->second) {
          if (dist.emplace(next, dist[here] + 1).second) {
            next_frontier.push_back(next);
          }
        }
      }
      frontier = std::move(next_frontier);
    }
  }
  // Destination-ward neighbour order (ties by name, unreachable last): the
  // DFS dives straight towards the destination before spending budget on
  // detours. Without this the step budget can drain inside a subtree that
  // cannot complete any path — e.g. a stub destination's single provider
  // exploring the whole core first — and "nearest neighbour first" keeps
  // which paths get found independent of link declaration order.
  for (auto& [node, neighbours] : adjacency) {
    std::sort(neighbours.begin(), neighbours.end(),
              [&](const std::string& a, const std::string& b) {
                const auto da = dist.find(a);
                const auto db = dist.find(b);
                const std::int32_t ka =
                    da == dist.end() ? std::numeric_limits<std::int32_t>::max()
                                     : da->second;
                const std::int32_t kb =
                    db == dist.end() ? std::numeric_limits<std::int32_t>::max()
                                     : db->second;
                if (ka != kb) return ka < kb;
                return a < b;
              });
  }

  /// sigma(p) over the prebuilt label map, folded exactly as
  /// proto::path_signature: origination on the destination-adjacent link,
  /// combined_extend outward to the source.
  const auto fold_signature =
      [&](const spp::Path& path) -> std::optional<algebra::Value> {
    const auto label_of = [&](const std::string& from,
                              const std::string& to) {
      return labels.at(from).at(to);
    };
    std::optional<algebra::Value> sig =
        algebra.originate(label_of(path[path.size() - 2], path.back()));
    for (std::size_t i = path.size() - 2; i-- > 0;) {
      if (!sig.has_value()) return sig;
      sig = algebra.combined_extend(label_of(path[i], path[i + 1]), *sig);
    }
    return sig;
  };

  for (const std::string& node : topology.nodes) {
    if (node == topology.destination) continue;
    std::vector<spp::Path> candidates;
    // Guided DFS: extend only along edges whose endpoint can still reach
    // the destination within the remaining edge budget. The step budget is
    // a deterministic backstop against pathological path diversity.
    std::size_t steps_left = 64 * max_candidates;
    spp::Path prefix = {node};
    const auto dfs = [&](const auto& self, const std::string& here) -> void {
      if (candidates.size() >= max_candidates || steps_left == 0) return;
      --steps_left;
      if (here == topology.destination) {
        candidates.push_back(prefix);
        return;
      }
      const std::int32_t used =
          static_cast<std::int32_t>(prefix.size()) - 1;
      const auto it = adjacency.find(here);
      if (it == adjacency.end()) return;
      for (const std::string& next : it->second) {
        const auto d = dist.find(next);
        if (d == dist.end() || used + 1 + d->second > max_path_edges) {
          continue;
        }
        if (std::find(prefix.begin(), prefix.end(), next) != prefix.end()) {
          continue;
        }
        prefix.push_back(next);
        self(self, next);
        prefix.pop_back();
      }
    };
    dfs(dfs, node);
    // Fold each candidate through the algebra; phi paths (e.g. valley
    // violations under Gao-Rexford export rules) drop out here, exactly as
    // they would never be advertised by the protocol.
    std::vector<std::pair<algebra::Value, spp::Path>> ranked;
    ranked.reserve(candidates.size());
    for (spp::Path& path : candidates) {
      const auto sig = fold_signature(path);
      if (sig.has_value()) ranked.emplace_back(*sig, std::move(path));
    }
    // Repeated best-pick under the shared preference rule instead of a
    // comparison sort: algebra::compare is a partial order, which is not a
    // strict weak ordering, so std::sort would be undefined on it.
    const std::size_t keep = std::min(paths_per_node, ranked.size());
    for (std::size_t i = 0; i < keep; ++i) {
      std::size_t best = i;
      for (std::size_t j = i + 1; j < ranked.size(); ++j) {
        if (outranks(algebra, ranked[j], ranked[best])) best = j;
      }
      std::swap(ranked[i], ranked[best]);
      instance.add_permitted_path(ranked[i].second);
    }
  }
  return instance;
}

std::unique_ptr<ScenarioSource> gadget_source(GadgetSweep sweep) {
  return std::make_unique<GadgetSource>(std::move(sweep));
}

std::unique_ptr<ScenarioSource> rocketfuel_source(RocketfuelSweep sweep) {
  return std::make_unique<RocketfuelSource>(std::move(sweep));
}

std::unique_ptr<ScenarioSource> as_hierarchy_source(AsHierarchySweep sweep) {
  return std::make_unique<AsHierarchySource>(std::move(sweep));
}

std::unique_ptr<ScenarioSource> random_spp_source(RandomSppSweep sweep) {
  return std::make_unique<RandomSppSource>(std::move(sweep));
}

std::unique_ptr<ScenarioSource> standard_policy_source() {
  return std::make_unique<StandardPolicySource>();
}

std::unique_ptr<ScenarioSource> repair_target_source(RepairTargetSweep sweep) {
  return std::make_unique<RepairTargetSource>(std::move(sweep));
}

const std::vector<std::string>& builtin_source_names() {
  static const std::vector<std::string> names = {
      "gadgets",  "rocketfuel",     "as-hierarchy",
      "random-spp", "policies", "repair-targets"};
  return names;
}

std::unique_ptr<ScenarioSource> make_builtin_source(
    const std::string& name, bool include_emulations,
    bool include_simulations,
    const std::vector<std::int32_t>& hierarchy_depths) {
  if (name == "gadgets") {
    GadgetSweep sweep;
    sweep.include_emulations = include_emulations;
    sweep.include_simulations = include_simulations;
    return gadget_source(std::move(sweep));
  }
  if (name == "rocketfuel") {
    RocketfuelSweep sweep;
    sweep.include_simulations = include_simulations;
    return rocketfuel_source(std::move(sweep));
  }
  if (name == "as-hierarchy") {
    AsHierarchySweep sweep;
    sweep.include_simulations = include_simulations;
    if (!hierarchy_depths.empty()) sweep.depths = hierarchy_depths;
    return as_hierarchy_source(std::move(sweep));
  }
  if (name == "random-spp") return random_spp_source();
  if (name == "policies") return standard_policy_source();
  if (name == "repair-targets") return repair_target_source();
  throw InvalidArgument("unknown scenario source '" + name +
                        "' (available: gadgets, rocketfuel, as-hierarchy, "
                        "random-spp, policies, repair-targets)");
}

}  // namespace fsr::campaign
