#include "groundtruth/sat_solver.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/error.h"

namespace fsr::groundtruth {

namespace {
constexpr std::uint64_t k_restart_base = 64;  // conflicts per Luby unit
constexpr double k_activity_decay = 0.95;
constexpr double k_activity_rescale = 1e100;
}  // namespace

std::int32_t SatSolver::new_variable() {
  const auto var = static_cast<std::int32_t>(activity_.size());
  assigns_.push_back(k_unassigned);
  model_.push_back(0);
  saved_phase_.push_back(1);  // branch negative first: sparse assignments
  levels_.push_back(0);
  reasons_.push_back(k_no_reason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return var;
}

void SatSolver::add_clause(std::vector<Lit> literals) {
  if (!trail_limits_.empty()) {
    throw InvalidArgument("SatSolver::add_clause requires decision level 0");
  }
  if (contradiction_) return;

  std::sort(literals.begin(), literals.end());
  literals.erase(std::unique(literals.begin(), literals.end()),
                 literals.end());
  std::vector<Lit> kept;
  kept.reserve(literals.size());
  for (std::size_t i = 0; i < literals.size(); ++i) {
    const Lit lit = literals[i];
    if (i + 1 < literals.size() && literals[i + 1] == lit_negate(lit)) {
      return;  // tautology: contains var and its negation (sorted adjacency)
    }
    const std::int8_t value = value_of(lit);
    if (value == 0) return;     // already satisfied at level 0
    if (value == 1) continue;   // already false at level 0: drop the literal
    kept.push_back(lit);
  }

  if (kept.empty()) {
    contradiction_ = true;
    return;
  }
  if (kept.size() == 1) {
    enqueue(kept[0], k_no_reason);
    return;
  }
  clauses_.push_back(Clause{std::move(kept)});
  attach_clause(static_cast<std::int32_t>(clauses_.size()) - 1);
}

void SatSolver::attach_clause(std::int32_t clause_index) {
  const Clause& clause = clauses_[static_cast<std::size_t>(clause_index)];
  watches_[static_cast<std::size_t>(clause.literals[0])].push_back(
      Watcher{clause_index, clause.literals[1]});
  watches_[static_cast<std::size_t>(clause.literals[1])].push_back(
      Watcher{clause_index, clause.literals[0]});
}

void SatSolver::enqueue(Lit lit, std::int32_t reason) {
  const auto var = static_cast<std::size_t>(lit_var(lit));
  assigns_[var] = static_cast<std::int8_t>(lit & 1);
  levels_[var] = static_cast<std::int32_t>(trail_limits_.size());
  reasons_[var] = reason;
  trail_.push_back(lit);
}

std::int32_t SatSolver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++propagations_;
    // Clauses watching ¬p lost that watch; find them a replacement.
    const Lit false_lit = lit_negate(p);
    std::vector<Watcher>& watchers =
        watches_[static_cast<std::size_t>(false_lit)];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watchers.size(); ++i) {
      const Watcher watcher = watchers[i];
      if (value_of(watcher.blocker) == 0) {
        watchers[keep++] = watcher;
        continue;
      }
      Clause& clause = clauses_[static_cast<std::size_t>(watcher.clause)];
      if (clause.literals[0] == false_lit) {
        std::swap(clause.literals[0], clause.literals[1]);
      }
      const Lit first = clause.literals[0];
      if (value_of(first) == 0) {
        watchers[keep++] = Watcher{watcher.clause, first};
        continue;
      }
      bool rewatched = false;
      for (std::size_t j = 2; j < clause.literals.size(); ++j) {
        if (value_of(clause.literals[j]) != 1) {
          std::swap(clause.literals[1], clause.literals[j]);
          watches_[static_cast<std::size_t>(clause.literals[1])].push_back(
              Watcher{watcher.clause, first});
          rewatched = true;
          break;
        }
      }
      if (rewatched) continue;
      // Unit or conflicting on `first`.
      watchers[keep++] = Watcher{watcher.clause, first};
      if (value_of(first) == 1) {
        for (++i; i < watchers.size(); ++i) watchers[keep++] = watchers[i];
        watchers.resize(keep);
        propagate_head_ = trail_.size();
        return watcher.clause;
      }
      enqueue(first, watcher.clause);
    }
    watchers.resize(keep);
  }
  return -1;
}

void SatSolver::bump_variable(std::int32_t var) {
  double& activity = activity_[static_cast<std::size_t>(var)];
  activity += activity_increment_;
  if (activity > k_activity_rescale) {
    for (double& entry : activity_) entry /= k_activity_rescale;
    activity_increment_ /= k_activity_rescale;
  }
}

void SatSolver::decay_activities() { activity_increment_ /= k_activity_decay; }

std::int32_t SatSolver::analyze(std::int32_t conflict_index,
                                std::vector<Lit>& learned) {
  learned.assign(1, 0);  // slot 0: the asserting (first-UIP) literal
  std::vector<std::int32_t> to_clear;
  const auto current_level = static_cast<std::int32_t>(trail_limits_.size());
  std::int32_t open_paths = 0;
  Lit uip = 0;
  bool have_uip = false;
  std::size_t index = trail_.size();

  std::int32_t reason_index = conflict_index;
  do {
    const Clause& reason = clauses_[static_cast<std::size_t>(reason_index)];
    // For a propagation reason, literals[0] is the propagated literal
    // itself (already handled as `uip`); the initial conflict clause is
    // scanned in full.
    for (std::size_t j = have_uip ? 1 : 0; j < reason.literals.size(); ++j) {
      const Lit q = reason.literals[j];
      const std::int32_t var = lit_var(q);
      if (seen_[static_cast<std::size_t>(var)] != 0 ||
          levels_[static_cast<std::size_t>(var)] == 0) {
        continue;
      }
      seen_[static_cast<std::size_t>(var)] = 1;
      to_clear.push_back(var);
      bump_variable(var);
      if (levels_[static_cast<std::size_t>(var)] >= current_level) {
        ++open_paths;
      } else {
        learned.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (seen_[static_cast<std::size_t>(lit_var(trail_[index - 1]))] == 0) {
      --index;
    }
    --index;
    uip = trail_[index];
    have_uip = true;
    seen_[static_cast<std::size_t>(lit_var(uip))] = 0;
    reason_index = reasons_[static_cast<std::size_t>(lit_var(uip))];
    --open_paths;
  } while (open_paths > 0);
  learned[0] = lit_negate(uip);

  std::int32_t backjump_level = 0;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    backjump_level = std::max(
        backjump_level,
        levels_[static_cast<std::size_t>(lit_var(learned[i]))]);
  }
  // Put a literal of the backjump level in slot 1 so it gets watched: after
  // backtracking it is the clause's only other non-false literal.
  for (std::size_t i = 2; i < learned.size(); ++i) {
    if (levels_[static_cast<std::size_t>(lit_var(learned[i]))] ==
        backjump_level) {
      std::swap(learned[1], learned[i]);
      break;
    }
  }
  for (const std::int32_t var : to_clear) {
    seen_[static_cast<std::size_t>(var)] = 0;
  }
  return backjump_level;
}

void SatSolver::backtrack(std::int32_t level) {
  if (static_cast<std::int32_t>(trail_limits_.size()) <= level) return;
  const std::size_t floor = trail_limits_[static_cast<std::size_t>(level)];
  for (std::size_t i = trail_.size(); i > floor; --i) {
    const auto var = static_cast<std::size_t>(lit_var(trail_[i - 1]));
    saved_phase_[var] = assigns_[var];
    assigns_[var] = k_unassigned;
    reasons_[var] = k_no_reason;
  }
  trail_.resize(floor);
  trail_limits_.resize(static_cast<std::size_t>(level));
  propagate_head_ = std::min(propagate_head_, trail_.size());
}

std::int32_t SatSolver::pick_branch_variable() const {
  std::int32_t best = -1;
  double best_activity = -1.0;
  for (std::int32_t var = 0; var < variable_count(); ++var) {
    if (assigns_[static_cast<std::size_t>(var)] != k_unassigned) continue;
    const double activity = activity_[static_cast<std::size_t>(var)];
    if (activity > best_activity) {  // strict: ties keep the lowest index
      best_activity = activity;
      best = var;
    }
  }
  return best;
}

std::uint64_t SatSolver::luby(std::uint64_t i) {
  // Value of the Luby sequence at 0-based index i: 1 1 2 1 1 2 4 ...
  std::uint64_t size = 1;
  std::uint64_t exponent = 0;
  while (size < i + 1) {
    ++exponent;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --exponent;
    i %= size;
  }
  return std::uint64_t{1} << exponent;
}

SolveStatus SatSolver::solve(std::uint64_t max_conflicts) {
  return solve_under({}, max_conflicts);
}

void SatSolver::analyze_final(Lit failed) {
  // The subset of assumptions implying ¬failed: walk the trail above level
  // 0, expanding propagation reasons and collecting assumption decisions
  // (every decision below the branching levels IS an assumption literal).
  failed_assumptions_.assign(1, failed);
  if (trail_limits_.empty()) return;
  seen_[static_cast<std::size_t>(lit_var(failed))] = 1;
  for (std::size_t i = trail_.size(); i > trail_limits_[0]; --i) {
    const Lit lit = trail_[i - 1];
    const auto var = static_cast<std::size_t>(lit_var(lit));
    if (seen_[var] == 0) continue;
    seen_[var] = 0;
    const std::int32_t reason = reasons_[var];
    if (reason == k_no_reason) {
      failed_assumptions_.push_back(lit);
      continue;
    }
    const Clause& clause = clauses_[static_cast<std::size_t>(reason)];
    for (std::size_t j = 1; j < clause.literals.size(); ++j) {
      const auto other = static_cast<std::size_t>(lit_var(clause.literals[j]));
      if (levels_[other] > 0) seen_[other] = 1;
    }
  }
  seen_[static_cast<std::size_t>(lit_var(failed))] = 0;
}

SolveStatus SatSolver::solve_under(const std::vector<Lit>& assumptions,
                                   std::uint64_t max_conflicts) {
  obs::Tracer* const telemetry = obs::tracer();
  if (telemetry == nullptr) return solve_under_impl(assumptions, max_conflicts);

  // Telemetry wrapper: bracket the solve and flush end-of-query counter
  // samples so every traced query carries a conflict-rate point and the
  // learned-DB/propagation totals, even when it never restarts. Mid-run
  // samples (restart sites) come from solve_under_impl.
  const std::uint64_t start_us = telemetry->now_us();
  const std::uint64_t conflict_floor = conflicts_;
  const SolveStatus status = solve_under_impl(assumptions, max_conflicts);
  const std::uint64_t elapsed_us = telemetry->now_us() - start_us;
  const std::uint64_t spent = conflicts_ - conflict_floor;
  const double rate = elapsed_us > 0 ? 1e6 * static_cast<double>(spent) /
                                           static_cast<double>(elapsed_us)
                                     : 0.0;
  telemetry->counter("sat.conflict_rate", rate);
  telemetry->counter("sat.learned_db", learned_);
  telemetry->counter("sat.propagations", propagations_);
  return status;
}

SolveStatus SatSolver::solve_under_impl(const std::vector<Lit>& assumptions,
                                        std::uint64_t max_conflicts) {
  failed_assumptions_.clear();
  if (contradiction_) return SolveStatus::unsatisfiable;

  // Loaded once per solve: free when tracing is off, and restarts are rare
  // enough (k_restart_base conflicts apart at minimum) that the emission
  // below never touches the propagation loop's cost.
  obs::Tracer* const telemetry = obs::tracer();
  std::uint64_t sample_us = telemetry != nullptr ? telemetry->now_us() : 0;
  std::uint64_t sample_conflicts = conflicts_;

  const std::uint64_t conflict_floor = conflicts_;
  std::uint64_t restart_sequence = restarts_;
  std::uint64_t restart_budget = k_restart_base * luby(restart_sequence);
  std::uint64_t conflicts_this_restart = 0;
  std::vector<Lit> learned;

  while (true) {
    const std::int32_t conflict_index = propagate();
    if (conflict_index >= 0) {
      ++conflicts_;
      if (trail_limits_.empty()) {
        contradiction_ = true;
        return SolveStatus::unsatisfiable;
      }
      const std::int32_t backjump_level = analyze(conflict_index, learned);
      backtrack(backjump_level);
      if (learned.size() == 1) {
        enqueue(learned[0], k_no_reason);
      } else {
        clauses_.push_back(Clause{learned});
        const auto clause_index =
            static_cast<std::int32_t>(clauses_.size()) - 1;
        attach_clause(clause_index);
        enqueue(learned[0], clause_index);
      }
      ++learned_;
      decay_activities();

      if (max_conflicts != 0 && conflicts_ - conflict_floor >= max_conflicts) {
        backtrack(0);
        return SolveStatus::unknown;
      }
      if (++conflicts_this_restart >= restart_budget) {
        ++restarts_;
        ++restart_sequence;
        restart_budget = k_restart_base * luby(restart_sequence);
        conflicts_this_restart = 0;
        backtrack(0);
        if (telemetry != nullptr) {
          // Restart instant + a mid-run sample of the series the query
          // flushes at the end, so long solves read as timelines.
          telemetry->instant("sat.restart");
          const std::uint64_t now = telemetry->now_us();
          const std::uint64_t spent = conflicts_ - sample_conflicts;
          const double rate = now > sample_us
                                  ? 1e6 * static_cast<double>(spent) /
                                        static_cast<double>(now - sample_us)
                                  : 0.0;
          telemetry->counter("sat.conflict_rate", rate);
          telemetry->counter("sat.learned_db", learned_);
          telemetry->counter("sat.propagations", propagations_);
          sample_us = now;
          sample_conflicts = conflicts_;
        }
      }
      continue;
    }

    // Establish pending assumptions as pseudo-decisions before branching
    // (a dummy level when already propagated true; unsat-under-assumptions
    // when falsified).
    Lit next = 0;
    bool have_next = false;
    while (trail_limits_.size() < assumptions.size()) {
      const Lit assumption = assumptions[trail_limits_.size()];
      const std::int8_t value = value_of(assumption);
      if (value == 0) {
        trail_limits_.push_back(trail_.size());
      } else if (value == 1) {
        analyze_final(assumption);
        backtrack(0);
        return SolveStatus::unsatisfiable;
      } else {
        next = assumption;
        have_next = true;
        break;
      }
    }
    if (!have_next) {
      const std::int32_t branch_var = pick_branch_variable();
      if (branch_var < 0) {
        model_ = assigns_;
        backtrack(0);
        return SolveStatus::satisfiable;
      }
      ++decisions_;
      next = make_lit(branch_var,
                      saved_phase_[static_cast<std::size_t>(branch_var)] == 1);
    }
    trail_limits_.push_back(trail_.size());
    enqueue(next, k_no_reason);
  }
}

GroupId SatSolver::new_group() {
  group_selectors_.push_back(new_variable());
  group_retired_.push_back(0);
  return static_cast<GroupId>(group_selectors_.size()) - 1;
}

void SatSolver::add_clause_in_group(GroupId group, std::vector<Lit> literals) {
  if (group_retired(group)) return;
  literals.push_back(group_disable(group));
  add_clause(std::move(literals));
}

void SatSolver::retire_group(GroupId group) {
  if (group_retired(group)) return;
  group_retired_[static_cast<std::size_t>(group)] = 1;
  add_clause({group_disable(group)});
}

}  // namespace fsr::groundtruth
