// SAT encoding of the stable-paths problem (the conflict-driven
// ground-truth oracle behind engine.h).
//
// A stable assignment picks, per node, one permitted path or none, such
// that every node's pick is its best consistent choice (spp.h). That
// condition is exactly a CNF over one Boolean per (node, permitted path)
// pair plus one "routes to nothing" Boolean per node:
//
//   * exactly-one: each node selects exactly one option;
//   * consistency: a non-direct path requires its next hop to select the
//     path's one-step suffix;
//   * bestness:    selecting a path (or nothing) forbids the availability
//                  of every better-ranked alternative — a direct better
//                  path yields a unit clause (the ranking structure the
//                  solver unit-propagates before ever branching), a
//                  transit one a binary clause against its suffix.
//
// The CDCL solver (sat_solver.h) then decides existence, and enumerates
// stable assignments up to a bound by re-solving under blocking clauses.
// Everything is deterministic in the instance alone.
//
// Two entry points share the encoding:
//
//   * solve_stable_assignments — one-shot: encode the instance from
//     scratch, decide, enumerate. The PR-3 behaviour, kept as the
//     differential cross-check against the session below.
//   * StableSatSession — incremental: encode a BASE instance once, then
//     answer a stream of "what if node X ranked its paths like THIS?"
//     queries. Only the clauses that depend on a node's ranking ORDER and
//     MEMBERSHIP (its bestness and route-to-nothing clauses) live in
//     retractable clause groups (sat_solver.h); exactly-one and
//     consistency clauses are rank-independent and permanent. A query
//     activates one ranking group per node via assumption literals; edited
//     rankings are encoded as fresh groups (a per-node CNF delta, cached
//     across queries), and a dropped path is forced off by a membership
//     unit inside the edited group — every other effect of the drop
//     (upstream paths losing their suffix, bestness clauses that mention
//     it) follows by unit propagation. Per-query blocking clauses go into
//     a throwaway group retired when the query ends, so enumeration never
//     leaks constraints into the next query. This is how the repair
//     engine validates hundreds of candidate edits against one persistent
//     solver instead of re-encoding each edited instance from scratch.
#ifndef FSR_GROUNDTRUTH_STABLE_SAT_H
#define FSR_GROUNDTRUTH_STABLE_SAT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "groundtruth/sat_solver.h"
#include "spp/spp.h"

namespace fsr::groundtruth {

/// Which budget cut a search short. `none` means no budget interfered
/// (verdict and count are exact); `solutions` means the existence verdict
/// is exact but enumeration stopped at the solution bound (count is a
/// floor); `conflicts`/`states` mean the backend's effort budget ran out.
enum class BudgetStop { none, states, conflicts, solutions };

const char* to_string(BudgetStop stop) noexcept;

struct StableSearchStats {
  std::uint64_t variables = 0;
  std::uint64_t clauses = 0;       // encoded clauses (units included)
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t learned_clauses = 0;
};

struct StableSearchResult {
  /// False only when the conflict budget ran out before a verdict; every
  /// other field is then meaningless.
  bool decided = false;
  bool has_stable = false;
  /// Distinct stable assignments found, capped at `max_solutions`;
  /// `count_exact` marks whether enumeration finished under the cap.
  std::size_t count = 0;
  bool count_exact = false;
  /// Which budget (if any) stopped the search: `conflicts` when the
  /// conflict cap ran out (possibly mid-enumeration), `solutions` when the
  /// solution bound was reached first.
  BudgetStop budget_stop = BudgetStop::none;
  /// Found assignments in canonical (lexicographic) order, at most
  /// `max_solutions` of them.
  std::vector<spp::Assignment> assignments;
  StableSearchStats stats;
};

/// Decides whether `instance` has a stable path assignment and enumerates
/// up to `max_solutions` of them (0 = decide existence only, still
/// returning one witness). `max_conflicts` bounds total solver effort
/// across the enumeration (0 = unbounded).
StableSearchResult solve_stable_assignments(const spp::SppInstance& instance,
                                            std::size_t max_solutions,
                                            std::uint64_t max_conflicts = 0);

/// One node's replacement ranking for an incremental session query:
/// `ranked` must list paths permitted at `node` in the session's BASE
/// instance (any subset, any order, no duplicates). Paths absent from
/// `ranked` are dropped for the query; a pure reorder is a demote-style
/// edit. Queries with an empty delta list analyze the base instance.
struct RankingDelta {
  std::string node;
  std::vector<spp::Path> ranked;
};

/// Cumulative work counters for a session (cheap diagnostics for benches
/// and the repair report).
struct StableSessionStats {
  std::uint64_t queries = 0;
  std::uint64_t base_clauses = 0;      // permanent + base ranking groups
  std::uint64_t delta_clauses = 0;     // clauses encoded after construction
  std::uint64_t groups_encoded = 0;    // ranking groups built (incl. base)
  std::uint64_t group_cache_hits = 0;  // node rankings served from cache
};

/// The incremental stable-paths oracle: one persistent CDCL solver, many
/// edited-instance queries (see the file comment for the clause-group
/// layout). analyze() answers with the same semantics — and, wherever no
/// budget is exhausted mid-query, the same verdict, count, and canonical
/// witness set — as solve_stable_assignments on the correspondingly edited
/// instance; the differential test harness sweeps exactly that agreement.
///
/// Thread-compatibility: a session is a mutable single-thread object
/// (it owns a SatSolver); distinct sessions are fully independent.
class StableSatSession {
 public:
  /// Snapshots `base` (rankings, variables, permanent clauses); the
  /// instance need not outlive the session.
  explicit StableSatSession(const spp::SppInstance& base);

  StableSatSession(const StableSatSession&) = delete;
  StableSatSession& operator=(const StableSatSession&) = delete;
  StableSatSession(StableSatSession&&) = default;
  StableSatSession& operator=(StableSatSession&&) = default;

  /// Decides/enumerates the base instance with each delta's node re-ranked
  /// as given (at most one delta per node). Throws fsr::InvalidArgument on
  /// a delta naming an unknown node or a path not permitted there in the
  /// base. `max_conflicts` bounds this query's solver effort only; the
  /// reported stats are likewise per query (clauses = newly encoded).
  StableSearchResult analyze(const std::vector<RankingDelta>& deltas,
                             std::size_t max_solutions,
                             std::uint64_t max_conflicts = 0);

  const StableSessionStats& stats() const noexcept { return stats_; }

 private:
  /// How a path can become available to its owner (fixed by the base
  /// instance: membership only ever shrinks under drop edits, so a
  /// never-available path stays never-available in every query).
  enum class Avail { direct, never, suffix };

  struct NodeBlock {
    std::vector<int> base_pids;  // base ranking as interned path ids
    std::int32_t none_var = -1;
  };

  /// Returns the (cached or freshly encoded) ranking group for `node`
  /// ranked as `pids`.
  GroupId ranking_group(const std::string& node, const std::vector<int>& pids);
  void encode_ranking_group(GroupId group, const NodeBlock& block,
                            const std::vector<int>& pids);
  void add_group_clause(GroupId group, std::vector<Lit> literals);

  SatSolver solver_;
  std::vector<std::string> nodes_;
  std::map<std::string, NodeBlock> blocks_;
  std::vector<spp::Path> paths_;  // by interned path id
  std::map<spp::Path, int> pid_of_;
  std::vector<std::int32_t> var_of_pid_;
  std::vector<Avail> avail_of_pid_;
  std::vector<int> suffix_pid_;          // valid when avail == suffix
  std::vector<GroupId> ranking_groups_;  // creation order = assumption order
  std::map<std::string, GroupId> group_cache_;  // "<node>|p0,p1,..." -> group
  std::uint64_t encoded_clauses_ = 0;  // current query's clause counter
  StableSessionStats stats_;
};

}  // namespace fsr::groundtruth

#endif  // FSR_GROUNDTRUTH_STABLE_SAT_H
