// SAT encoding of the stable-paths problem (the conflict-driven
// ground-truth oracle behind engine.h).
//
// A stable assignment picks, per node, one permitted path or none, such
// that every node's pick is its best consistent choice (spp.h). That
// condition is exactly a CNF over one Boolean per (node, permitted path)
// pair plus one "routes to nothing" Boolean per node:
//
//   * exactly-one: each node selects exactly one option;
//   * consistency: a non-direct path requires its next hop to select the
//     path's one-step suffix;
//   * bestness:    selecting a path (or nothing) forbids the availability
//                  of every better-ranked alternative — a direct better
//                  path yields a unit clause (the ranking structure the
//                  solver unit-propagates before ever branching), a
//                  transit one a binary clause against its suffix.
//
// The CDCL solver (sat_solver.h) then decides existence, and enumerates
// stable assignments up to a bound by re-solving under blocking clauses.
// Everything is deterministic in the instance alone.
#ifndef FSR_GROUNDTRUTH_STABLE_SAT_H
#define FSR_GROUNDTRUTH_STABLE_SAT_H

#include <cstdint>
#include <vector>

#include "groundtruth/sat_solver.h"
#include "spp/spp.h"

namespace fsr::groundtruth {

struct StableSearchStats {
  std::uint64_t variables = 0;
  std::uint64_t clauses = 0;       // encoded clauses (units included)
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t learned_clauses = 0;
};

struct StableSearchResult {
  /// False only when the conflict budget ran out before a verdict; every
  /// other field is then meaningless.
  bool decided = false;
  bool has_stable = false;
  /// Distinct stable assignments found, capped at `max_solutions`;
  /// `count_exact` marks whether enumeration finished under the cap.
  std::size_t count = 0;
  bool count_exact = false;
  /// Found assignments in canonical (lexicographic) order, at most
  /// `max_solutions` of them.
  std::vector<spp::Assignment> assignments;
  StableSearchStats stats;
};

/// Decides whether `instance` has a stable path assignment and enumerates
/// up to `max_solutions` of them (0 = decide existence only, still
/// returning one witness). `max_conflicts` bounds total solver effort
/// across the enumeration (0 = unbounded).
StableSearchResult solve_stable_assignments(const spp::SppInstance& instance,
                                            std::size_t max_solutions,
                                            std::uint64_t max_conflicts = 0);

}  // namespace fsr::groundtruth

#endif  // FSR_GROUNDTRUTH_STABLE_SAT_H
