// Ground-truth oracles for SPP stability — the toolkit's exact answer to
// "does this configuration have a stable path assignment?", used to
// cross-validate solver verdicts (repair engine, agreement tests,
// campaigns).
//
// Two interchangeable backends:
//
//   * enumerate  — the classic brute-force scan over every (node -> path)
//                  combination. Exact on gadget-sized instances; beyond
//                  `max_states` combinations it gives up (Result.decided
//                  false) — the seed toolkit's behaviour.
//   * sat-search — conflict-driven search over the CNF encoding of the
//                  stability condition (stable_sat.h): unit propagation
//                  from ranking structure, learned conflict clauses,
//                  activity branching. Decides Rocketfuel-sized instances
//                  exactly and enumerates solutions up to a bound; the
//                  default oracle everywhere.
//
// Both backends agree wherever enumeration is exact (a property the test
// suite sweeps across the gadget library and seeded random instances), and
// both are deterministic in the instance alone — results feed byte-stable
// campaign JSON.
#ifndef FSR_GROUNDTRUTH_ENGINE_H
#define FSR_GROUNDTRUTH_ENGINE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "groundtruth/stable_sat.h"
#include "spp/spp.h"

namespace fsr::groundtruth {

enum class Mode { enumerate, sat_search };

const char* to_string(Mode mode) noexcept;
/// Parses "enumerate" / "sat-search"; nullopt for anything else.
std::optional<Mode> parse_mode(const std::string& text);

/// Shared CLI handling for the `--ground-truth MODE` flag (also accepts
/// `--ground-truth=MODE`, the spelling the docs use). Returns false when
/// argv[i] is not this flag. On a match, consumes the value (advancing
/// `i` for the two-token form) and stores the parsed mode into `mode` —
/// or nullopt when the value is missing/unknown, which callers report as
/// a usage error.
bool consume_mode_flag(int argc, char** argv, int& i,
                       std::optional<Mode>& mode);

struct Options {
  /// enumerate backend: give up beyond this many candidate states.
  std::uint64_t max_states = std::uint64_t{1} << 22;
  /// Stop enumerating stable assignments at this many (both backends);
  /// existence verdicts are unaffected.
  std::size_t max_solutions = 64;
  /// sat-search backend: conflict budget before answering "undecided"
  /// (0 = unbounded). The default decides every workload in the repo.
  std::uint64_t max_conflicts = std::uint64_t{1} << 20;
};

struct Result {
  /// True when the backend established the existence verdict. False means
  /// the budget ran out (enumerate: state cap; sat-search: conflict cap)
  /// and `has_stable` is meaningless.
  bool decided = false;
  bool has_stable = false;
  /// Distinct stable assignments found (<= max_solutions); exact iff
  /// `count_exact`, otherwise a floor.
  std::size_t count = 0;
  bool count_exact = false;
  /// Which budget (if any) cut the analysis short: `states` (enumerate's
  /// state cap), `conflicts` (sat-search's conflict cap), or `solutions`
  /// (the enumeration bound — verdict exact, count a floor).
  BudgetStop budget_stop = BudgetStop::none;
  /// A stable assignment when one was found, in canonical order (the
  /// lexicographically least of those enumerated).
  std::optional<spp::Assignment> witness;

  // Backend effort, for benches and reports.
  std::uint64_t states_scanned = 0;  // enumerate
  std::uint64_t conflicts = 0;       // sat-search
  std::uint64_t decisions = 0;       // sat-search
  std::uint64_t propagations = 0;    // sat-search
};

/// Thread-compatibility: engines hold only immutable options; analyze()
/// keeps all mutable state on its own stack, so one engine MAY be shared
/// by concurrent callers (the same contract as SafetyAnalyzer).
class GroundTruthEngine {
 public:
  virtual ~GroundTruthEngine() = default;
  virtual Mode mode() const noexcept = 0;
  virtual Result analyze(const spp::SppInstance& instance) const = 0;
};

std::unique_ptr<GroundTruthEngine> make_engine(Mode mode,
                                               Options options = {});

}  // namespace fsr::groundtruth

#endif  // FSR_GROUNDTRUTH_ENGINE_H
