#include "groundtruth/engine.h"

#include <algorithm>
#include <cstring>

#include "groundtruth/stable_sat.h"

namespace fsr::groundtruth {
namespace {

class EnumerateEngine final : public GroundTruthEngine {
 public:
  explicit EnumerateEngine(Options options) : options_(options) {}

  Mode mode() const noexcept override { return Mode::enumerate; }

  Result analyze(const spp::SppInstance& instance) const override {
    // O(nodes) pre-check, as the seed enumerator did: when the full state
    // space cannot fit the budget the scan could never be complete, and a
    // partial scan almost never surfaces a witness (stable states are not
    // front-loaded in counter order) — so reject instantly instead of
    // burning max_states stability checks per call. Callers wanting the
    // raw capped scan (e.g. bench lower bounds) use
    // spp::enumerate_stable_assignments_budgeted directly.
    std::uint64_t states = 1;
    for (const std::string& node : instance.nodes()) {
      const std::uint64_t node_options = instance.permitted(node).size() + 1;
      if (states > options_.max_states / node_options) {
        Result capped;  // undecided, zero states scanned
        capped.budget_stop = BudgetStop::states;
        return capped;
      }
      states *= node_options;
    }
    spp::BudgetedEnumeration scan = spp::enumerate_stable_assignments_budgeted(
        instance, options_.max_states, options_.max_solutions);
    Result result;
    result.states_scanned = scan.states_scanned;
    result.count = scan.assignments.size();
    // A partial scan that found witnesses still decides existence; one
    // that found nothing decides nothing.
    result.decided = scan.complete || !scan.assignments.empty();
    result.has_stable = !scan.assignments.empty();
    result.count_exact = scan.complete;
    switch (scan.stopped_by) {
      case spp::EnumerationStop::completed:
        break;
      case spp::EnumerationStop::state_budget:
        result.budget_stop = BudgetStop::states;
        break;
      case spp::EnumerationStop::solution_budget:
        result.budget_stop = BudgetStop::solutions;
        break;
    }
    if (!scan.assignments.empty()) {
      result.witness = *std::min_element(scan.assignments.begin(),
                                         scan.assignments.end());
    }
    return result;
  }

 private:
  Options options_;
};

class SatSearchEngine final : public GroundTruthEngine {
 public:
  explicit SatSearchEngine(Options options) : options_(options) {}

  Mode mode() const noexcept override { return Mode::sat_search; }

  Result analyze(const spp::SppInstance& instance) const override {
    const StableSearchResult search = solve_stable_assignments(
        instance, options_.max_solutions, options_.max_conflicts);
    Result result;
    result.decided = search.decided;
    result.has_stable = search.has_stable;
    result.count = search.count;
    result.count_exact = search.count_exact;
    result.budget_stop = search.budget_stop;
    if (!search.assignments.empty()) {
      result.witness = search.assignments.front();  // canonical order
    }
    result.conflicts = search.stats.conflicts;
    result.decisions = search.stats.decisions;
    result.propagations = search.stats.propagations;
    return result;
  }

 private:
  Options options_;
};

}  // namespace

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::enumerate:
      return "enumerate";
    case Mode::sat_search:
      return "sat-search";
  }
  return "sat-search";
}

std::optional<Mode> parse_mode(const std::string& text) {
  if (text == "enumerate") return Mode::enumerate;
  if (text == "sat-search") return Mode::sat_search;
  return std::nullopt;
}

bool consume_mode_flag(int argc, char** argv, int& i,
                       std::optional<Mode>& mode) {
  constexpr const char* k_flag = "--ground-truth";
  const char* arg = argv[i];
  if (std::strncmp(arg, k_flag, std::strlen(k_flag)) != 0) return false;
  const char* rest = arg + std::strlen(k_flag);
  if (*rest == '=') {
    mode = parse_mode(rest + 1);
    return true;
  }
  if (*rest != '\0') return false;  // e.g. --ground-truthy
  if (i + 1 >= argc) {
    mode = std::nullopt;  // flag without a value
    return true;
  }
  mode = parse_mode(argv[++i]);
  return true;
}

std::unique_ptr<GroundTruthEngine> make_engine(Mode mode, Options options) {
  if (mode == Mode::enumerate) {
    return std::make_unique<EnumerateEngine>(options);
  }
  return std::make_unique<SatSearchEngine>(options);
}

}  // namespace fsr::groundtruth
