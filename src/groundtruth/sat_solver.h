// A small, fully deterministic CDCL SAT solver — the search core behind
// the stable-assignment ground-truth engine (stable_sat.h).
//
// Feature set (the classic conflict-driven loop, sized for SPP encodings):
//   * two-watched-literal unit propagation;
//   * first-UIP conflict analysis with clause learning and backjumping;
//   * VSIDS-style activity branching (decay on every conflict; ties break
//     toward the lowest variable index, so runs are reproducible);
//   * phase saving and Luby-sequence restarts;
//   * solve-under-assumptions: assumption literals are established as
//     pseudo-decisions ahead of the search (MiniSat-style), so a single
//     solver instance answers many "what if" queries without rebuilding;
//     an unsatisfiable answer under assumptions leaves the solver reusable
//     and exposes the failed-assumption subset;
//   * retractable clause groups: clauses tagged with a fresh selector
//     variable, activated per solve via its assumption literal and
//     permanently retired with one unit clause — the mechanism behind the
//     incremental stable-paths oracle's per-edit CNF deltas;
//   * model enumeration support: the caller re-solves after adding a
//     blocking clause; learned clauses persist across solve() calls.
//
// Determinism contract: solve() is a pure function of the clause set and
// the call history — no randomization, no time-based heuristics — so every
// consumer (tests, benches, the campaign's byte-stable JSON) sees identical
// behaviour across runs, platforms, and thread counts.
//
// Thread-compatibility: a SatSolver is a mutable single-thread object;
// distinct instances are fully independent.
#ifndef FSR_GROUNDTRUTH_SAT_SOLVER_H
#define FSR_GROUNDTRUTH_SAT_SOLVER_H

#include <cstdint>
#include <vector>

namespace fsr::groundtruth {

/// A literal: variable index with sign. Encoded as 2*var (positive) or
/// 2*var+1 (negated), the usual DIMACS-free packed form.
using Lit = std::int32_t;

inline Lit make_lit(std::int32_t var, bool negated) {
  return (var << 1) | static_cast<std::int32_t>(negated);
}
inline std::int32_t lit_var(Lit lit) { return lit >> 1; }
inline bool lit_negated(Lit lit) { return (lit & 1) != 0; }
inline Lit lit_negate(Lit lit) { return lit ^ 1; }

enum class SolveStatus {
  satisfiable,
  unsatisfiable,
  unknown,  // conflict budget exhausted before a verdict
};

/// Index of a retractable clause group (see SatSolver::new_group).
using GroupId = std::int32_t;

class SatSolver {
 public:
  /// Creates one unassigned variable and returns its index.
  std::int32_t new_variable();

  std::int32_t variable_count() const noexcept {
    return static_cast<std::int32_t>(activity_.size());
  }

  /// Adds a clause (disjunction of literals). Duplicate literals are
  /// removed; a clause containing both polarities of a variable is a
  /// tautology and is dropped. The empty clause makes the instance
  /// trivially unsatisfiable. Must be called at decision level 0 (i.e.
  /// before solve(), or after solve() returned — the solver backtracks to
  /// level 0 on completion), which is when blocking clauses are added.
  void add_clause(std::vector<Lit> literals);

  /// Decides the clause set. `max_conflicts` == 0 means no budget.
  SolveStatus solve(std::uint64_t max_conflicts = 0);

  /// Decides the clause set under `assumptions` (literals established as
  /// pseudo-decisions before any branching, MiniSat-style). An
  /// `unsatisfiable` answer means unsat UNDER the assumptions — the solver
  /// stays reusable and failed_assumptions() names a responsible subset —
  /// unless the clause set itself derived a top-level contradiction, in
  /// which case every later solve is unsatisfiable too. Learned clauses
  /// are implied by the clause set alone (assumptions only steer the
  /// search), so they remain valid across queries with different
  /// assumption vectors.
  /// Telemetry: with a tracer installed (obs/trace.h), every solve flushes
  /// end-of-query "sat.conflict_rate" / "sat.learned_db" /
  /// "sat.propagations" counter samples, and each restart emits a
  /// "sat.restart" instant plus a mid-run sample — observation only, the
  /// search itself is byte-identical with tracing on or off.
  SolveStatus solve_under(const std::vector<Lit>& assumptions,
                          std::uint64_t max_conflicts = 0);

  /// After solve_under() returned unsatisfiable because of the
  /// assumptions: a subset of the assumption literals that is already
  /// jointly unsatisfiable with the clause set (the assumption-level unsat
  /// core). Empty after any other outcome, including top-level
  /// contradictions.
  const std::vector<Lit>& failed_assumptions() const noexcept {
    return failed_assumptions_;
  }

  // --- Retractable clause groups -----------------------------------------
  //
  // A group is a fresh selector variable s. add_clause_in_group(g, C)
  // stores C ∨ ¬s, so C constrains a solve exactly when that solve assumes
  // s (group_enable). Assuming ¬s (group_disable) switches the group's
  // clauses off; retiring the group asserts ¬s as a unit, permanently
  // satisfying them. Selector variables appear only negatively in clauses,
  // so learned clauses inherit the same on/off behaviour automatically.

  /// Creates a group (allocating its selector variable) and returns its id.
  GroupId new_group();

  std::int32_t group_count() const noexcept {
    return static_cast<std::int32_t>(group_selectors_.size());
  }

  /// Assumption literal that activates the group's clauses for one solve.
  Lit group_enable(GroupId group) const {
    return make_lit(group_selectors_[static_cast<std::size_t>(group)], false);
  }
  /// Assumption literal that deactivates the group's clauses for one solve.
  Lit group_disable(GroupId group) const {
    return make_lit(group_selectors_[static_cast<std::size_t>(group)], true);
  }

  /// Adds a clause that participates only in solves assuming the group's
  /// enable literal. Same level-0 contract as add_clause. No-op on a
  /// retired group.
  void add_clause_in_group(GroupId group, std::vector<Lit> literals);

  /// Permanently deactivates the group (unit ¬selector): its clauses are
  /// satisfied in every later solve and the enable literal must not be
  /// assumed again. Idempotent.
  void retire_group(GroupId group);

  bool group_retired(GroupId group) const {
    return group_retired_[static_cast<std::size_t>(group)] != 0;
  }

  /// Value of `var` in the model of the last satisfiable solve().
  bool model_value(std::int32_t var) const {
    return model_[static_cast<std::size_t>(var)] == 0;  // 0 encodes true
  }

  // Search statistics (cumulative across solve() calls).
  std::uint64_t conflicts() const noexcept { return conflicts_; }
  std::uint64_t decisions() const noexcept { return decisions_; }
  std::uint64_t propagations() const noexcept { return propagations_; }
  std::uint64_t learned_clauses() const noexcept { return learned_; }
  std::uint64_t restarts() const noexcept { return restarts_; }

 private:
  static constexpr std::int32_t k_no_reason = -1;
  static constexpr std::int8_t k_unassigned = 2;

  struct Clause {
    std::vector<Lit> literals;
  };

  struct Watcher {
    std::int32_t clause = 0;  // index into clauses_
    Lit blocker = 0;          // other watched literal (fast sat check)
  };

  std::int8_t value_of(Lit lit) const {
    const std::int8_t assigned = assigns_[static_cast<std::size_t>(lit_var(lit))];
    if (assigned == k_unassigned) return k_unassigned;
    return static_cast<std::int8_t>(assigned ^ static_cast<std::int8_t>(lit & 1));
  }

  void enqueue(Lit lit, std::int32_t reason);
  /// Returns the index of a conflicting clause, or -1.
  std::int32_t propagate();
  void attach_clause(std::int32_t clause_index);
  /// First-UIP analysis of `conflict_index`; fills `learned` (UIP literal
  /// first) and returns the backjump level.
  std::int32_t analyze(std::int32_t conflict_index, std::vector<Lit>& learned);
  void backtrack(std::int32_t level);
  void bump_variable(std::int32_t var);
  void decay_activities();
  std::int32_t pick_branch_variable() const;
  /// Fills failed_assumptions_ with the assumption subset responsible for
  /// falsifying assumption literal `failed` (MiniSat's analyzeFinal).
  void analyze_final(Lit failed);
  static std::uint64_t luby(std::uint64_t i);
  /// The CDCL loop proper; solve_under() is its telemetry wrapper.
  SolveStatus solve_under_impl(const std::vector<Lit>& assumptions,
                               std::uint64_t max_conflicts);

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<std::int8_t> assigns_;  // per var: 0 = true, 1 = false, 2 = none
  std::vector<std::int8_t> model_;
  std::vector<std::int8_t> saved_phase_;  // 0 = true, 1 = false
  std::vector<std::int32_t> levels_;      // per var
  std::vector<std::int32_t> reasons_;     // per var: clause index or -1
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_limits_;  // decision-level boundaries
  std::size_t propagate_head_ = 0;
  double activity_increment_ = 1.0;
  bool contradiction_ = false;  // a top-level conflict was derived
  std::vector<std::int32_t> group_selectors_;  // per group: selector var
  std::vector<std::int8_t> group_retired_;
  std::vector<Lit> failed_assumptions_;

  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t propagations_ = 0;
  std::uint64_t learned_ = 0;
  std::uint64_t restarts_ = 0;

  // Scratch for analyze().
  mutable std::vector<std::int8_t> seen_;
};

}  // namespace fsr::groundtruth

#endif  // FSR_GROUNDTRUTH_SAT_SOLVER_H
