#include "groundtruth/stable_sat.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/error.h"

namespace fsr::groundtruth {

namespace {

// Registry handles resolved once; per-query flushes below are a handful of
// relaxed atomic adds at query END — the CDCL inner loops keep their own
// cheap counters and never touch the registry.
struct SatMetrics {
  obs::Counter& queries = obs::registry().counter("sat.queries");
  obs::Counter& conflicts = obs::registry().counter("sat.conflicts");
  obs::Counter& decisions = obs::registry().counter("sat.decisions");
  obs::Counter& propagations = obs::registry().counter("sat.propagations");
  obs::Counter& learned = obs::registry().counter("sat.learned_clauses");
  obs::Counter& restarts = obs::registry().counter("sat.restarts");
  obs::Counter& groups_encoded = obs::registry().counter("sat.groups_encoded");
  obs::Counter& group_cache_hits =
      obs::registry().counter("sat.group_cache_hits");
};

SatMetrics& sat_metrics() {
  static SatMetrics metrics;
  return metrics;
}

void flush_search_effort(const char* site, const StableSearchStats& stats,
                         std::uint64_t restarts, obs::Span& span) {
  SatMetrics& metrics = sat_metrics();
  metrics.queries.add(1);
  metrics.conflicts.add(stats.conflicts);
  metrics.decisions.add(stats.decisions);
  metrics.propagations.add(stats.propagations);
  metrics.learned.add(stats.learned_clauses);
  metrics.restarts.add(restarts);
  span.arg("conflicts", stats.conflicts);
  span.arg("decisions", stats.decisions);
  span.arg("propagations", stats.propagations);
  span.arg("learned_clauses", stats.learned_clauses);
  span.arg("restarts", restarts);
  obs::record_event(obs::RecorderEventKind::solver_query, site,
                    stats.conflicts, stats.propagations);
}

}  // namespace

const char* to_string(BudgetStop stop) noexcept {
  switch (stop) {
    case BudgetStop::none:
      return "none";
    case BudgetStop::states:
      return "states";
    case BudgetStop::conflicts:
      return "conflicts";
    case BudgetStop::solutions:
      return "solutions";
  }
  return "none";
}

namespace {

/// The per-node variable block: one selector per permitted path plus the
/// trailing "routes to nothing" selector.
struct NodeVars {
  std::vector<std::int32_t> path_vars;  // index = rank
  std::int32_t none_var = -1;
};

struct Encoding {
  SatSolver solver;
  std::vector<std::string> nodes;
  std::map<std::string, NodeVars> vars;
  std::uint64_t clause_count = 0;
};

void add_counted(Encoding& encoding, std::vector<Lit> literals) {
  encoding.solver.add_clause(std::move(literals));
  ++encoding.clause_count;
}

/// Availability literal of a permitted path: the positive selector of its
/// one-step suffix at the next hop, or nullopt when the path is direct
/// (always available) — the suffix-not-permitted case (never available)
/// is signalled via `never_available`.
std::optional<Lit> availability_literal(const spp::SppInstance& instance,
                                        const Encoding& encoding,
                                        const spp::Path& path,
                                        bool& never_available) {
  never_available = false;
  if (path.size() == 2) return std::nullopt;  // direct to the destination
  const spp::Path suffix(path.begin() + 1, path.end());
  const auto rank = instance.rank_of(suffix);
  if (!rank.has_value()) {
    never_available = true;
    return std::nullopt;
  }
  const NodeVars& next_hop = encoding.vars.at(suffix.front());
  return make_lit(next_hop.path_vars[*rank], false);
}

Encoding encode(const spp::SppInstance& instance) {
  Encoding encoding;
  encoding.nodes = instance.nodes();

  for (const std::string& node : encoding.nodes) {
    NodeVars block;
    for (std::size_t i = 0; i < instance.permitted(node).size(); ++i) {
      block.path_vars.push_back(encoding.solver.new_variable());
    }
    block.none_var = encoding.solver.new_variable();
    encoding.vars.emplace(node, std::move(block));
  }

  for (const std::string& node : encoding.nodes) {
    const NodeVars& block = encoding.vars.at(node);
    const std::vector<spp::Path>& ranked = instance.permitted(node);

    // Exactly-one: at-least-one over all selectors, at-most-one pairwise.
    std::vector<Lit> at_least_one;
    for (const std::int32_t var : block.path_vars) {
      at_least_one.push_back(make_lit(var, false));
    }
    at_least_one.push_back(make_lit(block.none_var, false));
    add_counted(encoding, at_least_one);
    for (std::size_t i = 0; i < at_least_one.size(); ++i) {
      for (std::size_t j = i + 1; j < at_least_one.size(); ++j) {
        add_counted(encoding, {lit_negate(at_least_one[i]),
                               lit_negate(at_least_one[j])});
      }
    }

    for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
      const Lit selected = make_lit(block.path_vars[rank], false);

      // Consistency: a selected transit path needs its suffix selected at
      // the next hop; a path whose suffix is not even permitted there can
      // never be chosen (unit clause — pure ranking structure).
      bool never_available = false;
      const auto available =
          availability_literal(instance, encoding, ranked[rank],
                               never_available);
      if (never_available) {
        add_counted(encoding, {lit_negate(selected)});
        continue;
      }
      if (available.has_value()) {
        add_counted(encoding, {lit_negate(selected), *available});
      }

      // Bestness: every better-ranked alternative must be unavailable.
      for (std::size_t better = 0; better < rank; ++better) {
        bool better_never = false;
        const auto better_available = availability_literal(
            instance, encoding, ranked[better], better_never);
        if (better_never) continue;  // that alternative can never pre-empt
        if (!better_available.has_value()) {
          // A better-ranked direct path is always available: this path can
          // never be the best consistent choice.
          add_counted(encoding, {lit_negate(selected)});
          break;
        }
        add_counted(encoding,
                    {lit_negate(selected), lit_negate(*better_available)});
      }
    }

    // Routing to nothing requires every permitted path to be unavailable.
    const Lit none = make_lit(block.none_var, false);
    for (const spp::Path& path : ranked) {
      bool never_available = false;
      const auto available =
          availability_literal(instance, encoding, path, never_available);
      if (never_available) continue;
      if (!available.has_value()) {
        add_counted(encoding, {lit_negate(none)});  // a direct path exists
        break;
      }
      add_counted(encoding, {lit_negate(none), lit_negate(*available)});
    }
  }
  return encoding;
}

spp::Assignment decode(const spp::SppInstance& instance,
                       const Encoding& encoding) {
  spp::Assignment assignment;
  for (const std::string& node : encoding.nodes) {
    const NodeVars& block = encoding.vars.at(node);
    for (std::size_t rank = 0; rank < block.path_vars.size(); ++rank) {
      if (encoding.solver.model_value(block.path_vars[rank])) {
        assignment[node] = instance.permitted(node)[rank];
        break;
      }
    }
  }
  return assignment;
}

/// The clause forbidding the model just found: some node must select a
/// different option. One literal per node (the selected one, negated).
std::vector<Lit> blocking_clause(const Encoding& encoding) {
  std::vector<Lit> clause;
  for (const std::string& node : encoding.nodes) {
    const NodeVars& block = encoding.vars.at(node);
    bool blocked = false;
    for (const std::int32_t var : block.path_vars) {
      if (encoding.solver.model_value(var)) {
        clause.push_back(make_lit(var, true));
        blocked = true;
        break;
      }
    }
    if (!blocked) clause.push_back(make_lit(block.none_var, true));
  }
  return clause;
}

}  // namespace

StableSearchResult solve_stable_assignments(const spp::SppInstance& instance,
                                            std::size_t max_solutions,
                                            std::uint64_t max_conflicts) {
  obs::Span span("sat.solve_scratch");
  span.arg("instance", instance.name());
  StableSearchResult result;
  if (instance.nodes().empty()) {
    result.decided = true;
    result.has_stable = true;
    result.count = 1;  // the empty assignment is vacuously stable
    result.count_exact = true;
    result.assignments.push_back({});
    return result;
  }

  Encoding encoding = encode(instance);
  const std::size_t target = std::max<std::size_t>(max_solutions, 1);

  while (true) {
    std::uint64_t budget = 0;
    if (max_conflicts != 0) {
      const std::uint64_t spent = encoding.solver.conflicts();
      if (spent >= max_conflicts) {  // budget gone mid-enumeration
        result.budget_stop = BudgetStop::conflicts;
        break;
      }
      budget = max_conflicts - spent;
    }
    const SolveStatus status = encoding.solver.solve(budget);
    if (status == SolveStatus::unknown) {
      result.budget_stop = BudgetStop::conflicts;
      break;
    }
    if (status == SolveStatus::unsatisfiable) {
      result.decided = true;
      result.has_stable = !result.assignments.empty();
      result.count_exact = true;
      break;
    }
    result.decided = true;
    result.has_stable = true;
    result.assignments.push_back(decode(instance, encoding));
    if (result.assignments.size() >= target) {  // count stays a floor
      result.budget_stop = BudgetStop::solutions;
      break;
    }
    encoding.solver.add_clause(blocking_clause(encoding));
  }

  // An exhausted budget with no witness yet leaves the question open.
  if (result.assignments.empty() && !result.count_exact) {
    result.decided = false;
  }
  result.count = result.assignments.size();
  std::sort(result.assignments.begin(), result.assignments.end());

  result.stats.variables =
      static_cast<std::uint64_t>(encoding.solver.variable_count());
  result.stats.clauses = encoding.clause_count;
  result.stats.conflicts = encoding.solver.conflicts();
  result.stats.decisions = encoding.solver.decisions();
  result.stats.propagations = encoding.solver.propagations();
  result.stats.learned_clauses = encoding.solver.learned_clauses();
  flush_search_effort("sat.solve_scratch", result.stats,
                      encoding.solver.restarts(), span);
  return result;
}

// ------------------------------------------------------- incremental side --

namespace {

std::string ranking_key(const std::string& node, const std::vector<int>& pids) {
  std::string key = node + "|";
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (i > 0) key += ",";
    key += std::to_string(pids[i]);
  }
  return key;
}

}  // namespace

StableSatSession::StableSatSession(const spp::SppInstance& base) {
  nodes_ = base.nodes();

  // Variables first (availability clauses reference other nodes' blocks).
  for (const std::string& node : nodes_) {
    NodeBlock block;
    for (const spp::Path& path : base.permitted(node)) {
      const int pid = static_cast<int>(paths_.size());
      paths_.push_back(path);
      pid_of_.emplace(path, pid);
      var_of_pid_.push_back(solver_.new_variable());
      block.base_pids.push_back(pid);
    }
    block.none_var = solver_.new_variable();
    blocks_.emplace(node, std::move(block));
  }

  // Availability is fixed by the base instance: a path is direct, forever
  // unavailable (its suffix is not even base-permitted, and drop edits only
  // shrink membership), or gated on its suffix's selector.
  avail_of_pid_.reserve(paths_.size());
  suffix_pid_.assign(paths_.size(), -1);
  for (std::size_t pid = 0; pid < paths_.size(); ++pid) {
    if (paths_[pid].size() == 2) {
      avail_of_pid_.push_back(Avail::direct);
      continue;
    }
    const spp::Path suffix(paths_[pid].begin() + 1, paths_[pid].end());
    const auto it = pid_of_.find(suffix);
    if (it == pid_of_.end()) {
      avail_of_pid_.push_back(Avail::never);
    } else {
      avail_of_pid_.push_back(Avail::suffix);
      suffix_pid_[pid] = it->second;
    }
  }

  // Permanent (rank-independent) clauses: exactly-one per node and
  // consistency per path. Dropped paths are handled by membership units in
  // the edited ranking groups — a forced-off selector satisfies or prunes
  // every permanent clause that mentions it, exactly as re-encoding the
  // edited instance would.
  const auto add_permanent = [this](std::vector<Lit> literals) {
    solver_.add_clause(std::move(literals));
    ++stats_.base_clauses;
  };
  for (const std::string& node : nodes_) {
    const NodeBlock& block = blocks_.at(node);
    std::vector<Lit> options;
    for (const int pid : block.base_pids) {
      options.push_back(make_lit(var_of_pid_[static_cast<std::size_t>(pid)],
                                 false));
    }
    options.push_back(make_lit(block.none_var, false));
    add_permanent(options);
    for (std::size_t i = 0; i < options.size(); ++i) {
      for (std::size_t j = i + 1; j < options.size(); ++j) {
        add_permanent({lit_negate(options[i]), lit_negate(options[j])});
      }
    }
  }
  for (std::size_t pid = 0; pid < paths_.size(); ++pid) {
    const Lit selected = make_lit(var_of_pid_[pid], false);
    if (avail_of_pid_[pid] == Avail::never) {
      add_permanent({lit_negate(selected)});
    } else if (avail_of_pid_[pid] == Avail::suffix) {
      const auto suffix = static_cast<std::size_t>(suffix_pid_[pid]);
      add_permanent({lit_negate(selected), make_lit(var_of_pid_[suffix],
                                                    false)});
    }
  }

  // Base ranking groups, pre-seeded into the cache so an unedited node's
  // query resolves like any other ranking lookup.
  const std::uint64_t base_group_clause_floor = encoded_clauses_;
  for (const std::string& node : nodes_) {
    (void)ranking_group(node, blocks_.at(node).base_pids);
  }
  stats_.base_clauses += encoded_clauses_ - base_group_clause_floor;
  stats_.group_cache_hits = 0;  // construction lookups are not query hits
}

void StableSatSession::add_group_clause(GroupId group,
                                        std::vector<Lit> literals) {
  solver_.add_clause_in_group(group, std::move(literals));
  ++encoded_clauses_;
}

GroupId StableSatSession::ranking_group(const std::string& node,
                                        const std::vector<int>& pids) {
  const std::string key = ranking_key(node, pids);
  const auto it = group_cache_.find(key);
  if (it != group_cache_.end()) {
    ++stats_.group_cache_hits;
    return it->second;
  }
  const GroupId group = solver_.new_group();
  ranking_groups_.push_back(group);
  ++stats_.groups_encoded;
  encode_ranking_group(group, blocks_.at(node), pids);
  group_cache_.emplace(key, group);
  return group;
}

void StableSatSession::encode_ranking_group(GroupId group,
                                            const NodeBlock& block,
                                            const std::vector<int>& pids) {
  // Membership units: base paths absent from this ranking can never be
  // selected while the group is active. Everything downstream of a drop
  // (upstream consistency, bestness clauses that mention the dropped
  // path's availability) follows from these by unit propagation.
  for (const int pid : block.base_pids) {
    if (std::find(pids.begin(), pids.end(), pid) == pids.end()) {
      add_group_clause(group,
                       {make_lit(var_of_pid_[static_cast<std::size_t>(pid)],
                                 true)});
    }
  }

  // Bestness under THIS ranking order (mirrors encode() above; consistency
  // and the never-available units are permanent, so only the rank-dependent
  // clauses are re-emitted).
  for (std::size_t rank = 0; rank < pids.size(); ++rank) {
    const auto pid = static_cast<std::size_t>(pids[rank]);
    if (avail_of_pid_[pid] == Avail::never) continue;  // permanently off
    const Lit selected = make_lit(var_of_pid_[pid], false);
    for (std::size_t better = 0; better < rank; ++better) {
      const auto alt = static_cast<std::size_t>(pids[better]);
      if (avail_of_pid_[alt] == Avail::never) continue;
      if (avail_of_pid_[alt] == Avail::direct) {
        // A better-ranked direct path is always available: this path can
        // never be the best consistent choice.
        add_group_clause(group, {lit_negate(selected)});
        break;
      }
      const auto suffix = static_cast<std::size_t>(suffix_pid_[alt]);
      add_group_clause(group, {lit_negate(selected),
                               make_lit(var_of_pid_[suffix], true)});
    }
  }

  // Routing to nothing requires every ranked path to be unavailable.
  const Lit none = make_lit(block.none_var, false);
  for (const int signed_pid : pids) {
    const auto pid = static_cast<std::size_t>(signed_pid);
    if (avail_of_pid_[pid] == Avail::never) continue;
    if (avail_of_pid_[pid] == Avail::direct) {
      add_group_clause(group, {lit_negate(none)});  // a direct path exists
      break;
    }
    const auto suffix = static_cast<std::size_t>(suffix_pid_[pid]);
    add_group_clause(group, {lit_negate(none),
                             make_lit(var_of_pid_[suffix], true)});
  }
}

StableSearchResult StableSatSession::analyze(
    const std::vector<RankingDelta>& deltas, std::size_t max_solutions,
    std::uint64_t max_conflicts) {
  ++stats_.queries;
  obs::Span span("sat.analyze");
  span.arg("deltas", deltas.size());
  const std::uint64_t restart_floor = solver_.restarts();
  const std::uint64_t groups_floor = stats_.groups_encoded;
  const std::uint64_t group_hits_floor = stats_.group_cache_hits;
  StableSearchResult result;
  if (nodes_.empty()) {
    result.decided = true;
    result.has_stable = true;
    result.count = 1;  // the empty assignment is vacuously stable
    result.count_exact = true;
    result.assignments.push_back({});
    return result;
  }

  // Resolve the desired ranking (as interned path ids) per edited node.
  std::map<std::string, std::vector<int>> desired;
  for (const RankingDelta& delta : deltas) {
    const auto block_it = blocks_.find(delta.node);
    if (block_it == blocks_.end()) {
      throw InvalidArgument("stable-sat session: delta names unknown node '" +
                            delta.node + "'");
    }
    std::vector<int> pids;
    std::set<int> unique;
    for (const spp::Path& path : delta.ranked) {
      const auto pid_it = pid_of_.find(path);
      const bool permitted_here =
          pid_it != pid_of_.end() &&
          std::find(block_it->second.base_pids.begin(),
                    block_it->second.base_pids.end(),
                    pid_it->second) != block_it->second.base_pids.end();
      if (!permitted_here || !unique.insert(pid_it->second).second) {
        throw InvalidArgument("stable-sat session: delta for node '" +
                              delta.node + "' lists path " +
                              spp::path_name(path) +
                              (permitted_here ? " twice"
                                              : " not base-permitted there"));
      }
      pids.push_back(pid_it->second);
    }
    if (!desired.emplace(delta.node, std::move(pids)).second) {
      throw InvalidArgument("stable-sat session: two deltas for node '" +
                            delta.node + "'");
    }
  }

  const std::uint64_t conflict_floor = solver_.conflicts();
  const std::uint64_t decision_floor = solver_.decisions();
  const std::uint64_t propagation_floor = solver_.propagations();
  const std::uint64_t learned_floor = solver_.learned_clauses();
  const std::uint64_t clause_floor = encoded_clauses_;

  // One active ranking group per node; every other group is switched off
  // for this query.
  std::set<GroupId> active;
  for (const std::string& node : nodes_) {
    const auto it = desired.find(node);
    active.insert(ranking_group(
        node, it != desired.end() ? it->second : blocks_.at(node).base_pids));
  }
  std::vector<Lit> assumptions;
  assumptions.reserve(ranking_groups_.size() + 1);
  for (const GroupId group : ranking_groups_) {
    assumptions.push_back(active.contains(group) ? solver_.group_enable(group)
                                                 : solver_.group_disable(group));
  }

  const std::size_t target = std::max<std::size_t>(max_solutions, 1);
  GroupId query_group = -1;
  while (true) {
    std::uint64_t budget = 0;
    if (max_conflicts != 0) {
      const std::uint64_t spent = solver_.conflicts() - conflict_floor;
      if (spent >= max_conflicts) {
        result.budget_stop = BudgetStop::conflicts;
        break;
      }
      budget = max_conflicts - spent;
    }
    const SolveStatus status = solver_.solve_under(assumptions, budget);
    if (status == SolveStatus::unknown) {
      result.budget_stop = BudgetStop::conflicts;
      break;
    }
    if (status == SolveStatus::unsatisfiable) {
      result.decided = true;
      result.has_stable = !result.assignments.empty();
      result.count_exact = true;
      break;
    }
    result.decided = true;
    result.has_stable = true;
    spp::Assignment assignment;
    std::vector<Lit> blocking;
    for (const std::string& node : nodes_) {
      const auto it = desired.find(node);
      const std::vector<int>& pids =
          it != desired.end() ? it->second : blocks_.at(node).base_pids;
      bool blocked = false;
      for (const int pid : pids) {
        const auto var = var_of_pid_[static_cast<std::size_t>(pid)];
        if (solver_.model_value(var)) {
          assignment[node] = paths_[static_cast<std::size_t>(pid)];
          blocking.push_back(make_lit(var, true));
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        blocking.push_back(make_lit(blocks_.at(node).none_var, true));
      }
    }
    result.assignments.push_back(std::move(assignment));
    if (result.assignments.size() >= target) {  // count stays a floor
      result.budget_stop = BudgetStop::solutions;
      break;
    }
    if (query_group < 0) {
      // Blocking clauses are scoped to this query: they live in a fresh
      // group, assumed active now and retired below, so the next query's
      // enumeration starts from a clean slate.
      query_group = solver_.new_group();
      assumptions.push_back(solver_.group_enable(query_group));
    }
    solver_.add_clause_in_group(query_group, std::move(blocking));
    ++encoded_clauses_;
  }
  if (query_group >= 0) solver_.retire_group(query_group);

  // An exhausted budget with no witness yet leaves the question open.
  if (result.assignments.empty() && !result.count_exact) {
    result.decided = false;
  }
  result.count = result.assignments.size();
  std::sort(result.assignments.begin(), result.assignments.end());

  stats_.delta_clauses += encoded_clauses_ - clause_floor;
  result.stats.variables =
      static_cast<std::uint64_t>(solver_.variable_count());
  result.stats.clauses = encoded_clauses_ - clause_floor;
  result.stats.conflicts = solver_.conflicts() - conflict_floor;
  result.stats.decisions = solver_.decisions() - decision_floor;
  result.stats.propagations = solver_.propagations() - propagation_floor;
  result.stats.learned_clauses = solver_.learned_clauses() - learned_floor;
  flush_search_effort("sat.analyze", result.stats,
                      solver_.restarts() - restart_floor, span);
  sat_metrics().groups_encoded.add(stats_.groups_encoded - groups_floor);
  sat_metrics().group_cache_hits.add(stats_.group_cache_hits -
                                     group_hits_floor);
  return result;
}

}  // namespace fsr::groundtruth
