#include "groundtruth/stable_sat.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>

namespace fsr::groundtruth {
namespace {

/// The per-node variable block: one selector per permitted path plus the
/// trailing "routes to nothing" selector.
struct NodeVars {
  std::vector<std::int32_t> path_vars;  // index = rank
  std::int32_t none_var = -1;
};

struct Encoding {
  SatSolver solver;
  std::vector<std::string> nodes;
  std::map<std::string, NodeVars> vars;
  std::uint64_t clause_count = 0;
};

void add_counted(Encoding& encoding, std::vector<Lit> literals) {
  encoding.solver.add_clause(std::move(literals));
  ++encoding.clause_count;
}

/// Availability literal of a permitted path: the positive selector of its
/// one-step suffix at the next hop, or nullopt when the path is direct
/// (always available) — the suffix-not-permitted case (never available)
/// is signalled via `never_available`.
std::optional<Lit> availability_literal(const spp::SppInstance& instance,
                                        const Encoding& encoding,
                                        const spp::Path& path,
                                        bool& never_available) {
  never_available = false;
  if (path.size() == 2) return std::nullopt;  // direct to the destination
  const spp::Path suffix(path.begin() + 1, path.end());
  const auto rank = instance.rank_of(suffix);
  if (!rank.has_value()) {
    never_available = true;
    return std::nullopt;
  }
  const NodeVars& next_hop = encoding.vars.at(suffix.front());
  return make_lit(next_hop.path_vars[*rank], false);
}

Encoding encode(const spp::SppInstance& instance) {
  Encoding encoding;
  encoding.nodes = instance.nodes();

  for (const std::string& node : encoding.nodes) {
    NodeVars block;
    for (std::size_t i = 0; i < instance.permitted(node).size(); ++i) {
      block.path_vars.push_back(encoding.solver.new_variable());
    }
    block.none_var = encoding.solver.new_variable();
    encoding.vars.emplace(node, std::move(block));
  }

  for (const std::string& node : encoding.nodes) {
    const NodeVars& block = encoding.vars.at(node);
    const std::vector<spp::Path>& ranked = instance.permitted(node);

    // Exactly-one: at-least-one over all selectors, at-most-one pairwise.
    std::vector<Lit> at_least_one;
    for (const std::int32_t var : block.path_vars) {
      at_least_one.push_back(make_lit(var, false));
    }
    at_least_one.push_back(make_lit(block.none_var, false));
    add_counted(encoding, at_least_one);
    for (std::size_t i = 0; i < at_least_one.size(); ++i) {
      for (std::size_t j = i + 1; j < at_least_one.size(); ++j) {
        add_counted(encoding, {lit_negate(at_least_one[i]),
                               lit_negate(at_least_one[j])});
      }
    }

    for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
      const Lit selected = make_lit(block.path_vars[rank], false);

      // Consistency: a selected transit path needs its suffix selected at
      // the next hop; a path whose suffix is not even permitted there can
      // never be chosen (unit clause — pure ranking structure).
      bool never_available = false;
      const auto available =
          availability_literal(instance, encoding, ranked[rank],
                               never_available);
      if (never_available) {
        add_counted(encoding, {lit_negate(selected)});
        continue;
      }
      if (available.has_value()) {
        add_counted(encoding, {lit_negate(selected), *available});
      }

      // Bestness: every better-ranked alternative must be unavailable.
      for (std::size_t better = 0; better < rank; ++better) {
        bool better_never = false;
        const auto better_available = availability_literal(
            instance, encoding, ranked[better], better_never);
        if (better_never) continue;  // that alternative can never pre-empt
        if (!better_available.has_value()) {
          // A better-ranked direct path is always available: this path can
          // never be the best consistent choice.
          add_counted(encoding, {lit_negate(selected)});
          break;
        }
        add_counted(encoding,
                    {lit_negate(selected), lit_negate(*better_available)});
      }
    }

    // Routing to nothing requires every permitted path to be unavailable.
    const Lit none = make_lit(block.none_var, false);
    for (const spp::Path& path : ranked) {
      bool never_available = false;
      const auto available =
          availability_literal(instance, encoding, path, never_available);
      if (never_available) continue;
      if (!available.has_value()) {
        add_counted(encoding, {lit_negate(none)});  // a direct path exists
        break;
      }
      add_counted(encoding, {lit_negate(none), lit_negate(*available)});
    }
  }
  return encoding;
}

spp::Assignment decode(const spp::SppInstance& instance,
                       const Encoding& encoding) {
  spp::Assignment assignment;
  for (const std::string& node : encoding.nodes) {
    const NodeVars& block = encoding.vars.at(node);
    for (std::size_t rank = 0; rank < block.path_vars.size(); ++rank) {
      if (encoding.solver.model_value(block.path_vars[rank])) {
        assignment[node] = instance.permitted(node)[rank];
        break;
      }
    }
  }
  return assignment;
}

/// The clause forbidding the model just found: some node must select a
/// different option. One literal per node (the selected one, negated).
std::vector<Lit> blocking_clause(const Encoding& encoding) {
  std::vector<Lit> clause;
  for (const std::string& node : encoding.nodes) {
    const NodeVars& block = encoding.vars.at(node);
    bool blocked = false;
    for (const std::int32_t var : block.path_vars) {
      if (encoding.solver.model_value(var)) {
        clause.push_back(make_lit(var, true));
        blocked = true;
        break;
      }
    }
    if (!blocked) clause.push_back(make_lit(block.none_var, true));
  }
  return clause;
}

}  // namespace

StableSearchResult solve_stable_assignments(const spp::SppInstance& instance,
                                            std::size_t max_solutions,
                                            std::uint64_t max_conflicts) {
  StableSearchResult result;
  if (instance.nodes().empty()) {
    result.decided = true;
    result.has_stable = true;
    result.count = 1;  // the empty assignment is vacuously stable
    result.count_exact = true;
    result.assignments.push_back({});
    return result;
  }

  Encoding encoding = encode(instance);
  const std::size_t target = std::max<std::size_t>(max_solutions, 1);

  while (true) {
    std::uint64_t budget = 0;
    if (max_conflicts != 0) {
      const std::uint64_t spent = encoding.solver.conflicts();
      if (spent >= max_conflicts) break;  // budget gone mid-enumeration
      budget = max_conflicts - spent;
    }
    const SolveStatus status = encoding.solver.solve(budget);
    if (status == SolveStatus::unknown) break;
    if (status == SolveStatus::unsatisfiable) {
      result.decided = true;
      result.has_stable = !result.assignments.empty();
      result.count_exact = true;
      break;
    }
    result.decided = true;
    result.has_stable = true;
    result.assignments.push_back(decode(instance, encoding));
    if (result.assignments.size() >= target) break;  // count stays a floor
    encoding.solver.add_clause(blocking_clause(encoding));
  }

  // An exhausted budget with no witness yet leaves the question open.
  if (result.assignments.empty() && !result.count_exact) {
    result.decided = false;
  }
  result.count = result.assignments.size();
  std::sort(result.assignments.begin(), result.assignments.end());

  result.stats.variables =
      static_cast<std::uint64_t>(encoding.solver.variable_count());
  result.stats.clauses = encoding.clause_count;
  result.stats.conflicts = encoding.solver.conflicts();
  result.stats.decisions = encoding.solver.decisions();
  result.stats.propagations = encoding.solver.propagations();
  result.stats.learned_clauses = encoding.solver.learned_clauses();
  return result;
}

}  // namespace fsr::groundtruth
