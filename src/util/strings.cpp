#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace fsr::util {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_quoted(const std::string& text) {
  std::string out = "\"";
  out += json_escape(text);
  out += '"';
  return out;
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace fsr::util
