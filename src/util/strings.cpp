#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace fsr::util {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace fsr::util
