// Small string utilities used by the parsers and report printers.
#ifndef FSR_UTIL_STRINGS_H
#define FSR_UTIL_STRINGS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fsr::util {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on every occurrence of `sep` (single character).
/// Consecutive separators produce empty elements; an empty input produces
/// a single empty element, mirroring common split semantics.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Formats a double with fixed precision (used by report printers so that
/// benchmark output is stable across locales).
std::string format_fixed(double value, int digits);

/// Escapes `text` for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by every JSON renderer so the
/// escaping rules cannot drift between reports.
std::string json_escape(const std::string& text);

/// json_escape plus surrounding double quotes.
std::string json_quoted(const std::string& text);

/// 64-bit FNV-1a — the toolkit's one content-hash primitive (seed
/// derivation, cache digests, repair trial seeds).
std::uint64_t fnv1a64(const std::string& text);

}  // namespace fsr::util

#endif  // FSR_UTIL_STRINGS_H
