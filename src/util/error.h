// Error types shared across the FSR toolkit.
//
// Per C++ Core Guidelines E.2/E.14, errors that callers are expected to
// handle are reported by throwing exceptions derived from std::exception,
// with a dedicated type per subsystem so callers can discriminate.
#ifndef FSR_UTIL_ERROR_H
#define FSR_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace fsr {

/// Base class for all errors raised by the toolkit.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing a textual artifact (NDlog source, SMT s-expressions,
/// topology files) fails. Carries a human-readable location.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line, int column)
      : Error(what + " (line " + std::to_string(line) + ", column " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}

  int line() const noexcept { return line_; }
  int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Raised when an input violates a documented precondition of the public API
/// (e.g. referencing an undeclared signature in an algebra).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

}  // namespace fsr

#endif  // FSR_UTIL_ERROR_H
