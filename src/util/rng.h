// Deterministic random-number helper.
//
// All stochastic components in the toolkit (topology generators, link
// jitter) draw from an explicitly seeded engine so that every experiment is
// reproducible from its seed. Per Core Guidelines ES.48/I.2 we avoid hidden
// global state: each component owns its Rng instance.
#ifndef FSR_UTIL_RNG_H
#define FSR_UTIL_RNG_H

#include <cstdint>
#include <random>

namespace fsr::util {

/// A thin deterministic wrapper over std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derives an independent child generator; used so that sub-components
  /// consume random streams that do not interleave with the parent's.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fsr::util

#endif  // FSR_UTIL_RNG_H
