// Event-driven SPVP convergence simulator.
//
// The safety analyzer and the ground-truth oracles answer WHETHER a Stable
// Paths Problem configuration can diverge; this module answers HOW it
// converges (or visibly fails to): a discrete-event simulation of the
// Simple Path Vector Protocol in which nodes exchange announcement and
// withdrawal messages over per-link queues with seeded delays, batch their
// updates behind MRAI-style per-node timers, optionally suppress
// advertisements towards the next hop (split horizon / poisoned reverse),
// and react to churn — link flaps, session resets, staged originations.
//
// Determinism contract (the same one every fsr subsystem carries): a run is
// a pure function of (instance, SimOptions). All randomness — per-link
// delays, activation offsets, churn schedules — is drawn ONCE up front from
// the seed, events are processed in (tick, insertion-sequence) order, and no
// wall clock or thread identity ever enters the state. Same instance + same
// options => the same event trace, byte for byte, at any --threads value.
//
// Because the post-churn system is a deterministic transition system, the
// classic SPVP divergence question becomes decidable in the simulator:
// oscillation is detected EXACTLY. The default detector maintains an
// incrementally-updated 64-bit hash of the full machine state (per-component
// hashes for selections, adj-rib-ins, down links, MRAI timers, and the
// in-flight queue, updated at each mutation site), runs Brent's cycle
// detection over the post-churn hash sequence, and confirms every hash match
// against the full canonical state string — so a hash collision can never
// fake a cycle (rejections are counted in the sim.hash_collisions metric).
// The PR-8 full-canonicalisation detector is kept selectable
// (SimOptions::detector = "canonical") for the differential suite and the
// bench_sim ablation; the two are byte-identical on every SimResult field.
// A terminating run ends with an empty event queue; its final selections are
// checked against the stability predicate (`fixed_point_stable`), and the
// test suite differentially checks them against the SAT ground-truth oracle.
//
// Observability: simulate() flushes per-run deltas to the obs registry
// (sim.runs, sim.messages, sim.converged, sim.oscillations,
// sim.hash_collisions, the sim.convergence_steps histogram), wraps the run
// in a "sim.run" trace span, and leaves one flight-recorder mark per run —
// all at the run boundary, per the guidelines in obs/metrics.h, and none of
// it ever feeds back into the result.
#ifndef FSR_SIM_SIMULATOR_H
#define FSR_SIM_SIMULATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "spp/spp.h"

namespace fsr::sim {

/// The churn scenario names simulate() accepts (display order):
///   steady        — every node originates at tick 0; no churn.
///   staged        — seeded per-node activation offsets stagger the initial
///                   originations (announcement waves interleave).
///   link-flap     — steady start, then one seeded link goes down (in-flight
///                   messages on it are lost, both ends withdraw state) and
///                   comes back up a seeded number of ticks later.
///   session-reset — steady start, then one seeded link's session drops and
///                   immediately re-establishes: both ends forget what the
///                   other advertised and re-announce their current choice.
const std::vector<std::string>& scenario_names();

/// True when `name` is one of scenario_names() — the wire/CLI validation
/// shared by api/request.cpp and fsr_campaign.
bool is_scenario_name(const std::string& name);

/// The advertisement-suppression policy names simulate() accepts:
///   none             — every selection change is advertised to every
///                      neighbour over an up link (the SPVP default).
///   split-horizon    — a node never advertises its selection to the
///                      neighbour the selected path goes through (the
///                      classic RIP rule); the peer keeps whatever it last
///                      heard, so staleness is possible by design.
///   poisoned-reverse — like split-horizon, but the next-hop neighbour
///                      receives an explicit withdrawal instead of silence.
const std::vector<std::string>& suppression_names();

/// True when `name` is one of suppression_names() — the wire/CLI validation
/// shared by api/request.cpp and fsr_campaign.
bool is_suppression_name(const std::string& name);

/// Tuning knobs for one simulation run. `seed`, `scenario`, `suppression`
/// and `max_steps` are per-request identity (a SimulateRequest overrides
/// them); the rest are service-level configuration, part of ServiceOptions
/// like every other engine's option struct.
struct SimOptions {
  /// Seeds ALL randomness: per-link delays, staged offsets, churn picks.
  std::uint64_t seed = 1;
  /// One of scenario_names(). simulate() throws fsr::InvalidArgument on
  /// anything else.
  std::string scenario = "steady";
  /// One of suppression_names(). simulate() throws fsr::InvalidArgument on
  /// anything else.
  std::string suppression = "none";
  /// Event-processing budget. A run that neither quiesces nor repeats a
  /// state within the budget reports converged=false, oscillating=false,
  /// cutoff=true.
  std::uint64_t max_steps = 100000;
  /// MRAI batching window in ticks: after flushing its advertisements a
  /// node suppresses further sends for this long (changes are batched into
  /// one flush when the timer fires). 0 = pure triggered updates.
  std::uint32_t mrai_ticks = 0;
  /// Per-link delivery delays are drawn uniformly from [1, max_link_delay]
  /// once at start and stay fixed for the run.
  std::uint32_t max_link_delay = 4;
  /// Capture a human-readable line per processed event in SimResult::trace
  /// (the seeded-determinism property tests diff these). Off by default —
  /// traces are test/debug state, never part of a wire response.
  bool record_trace = false;
  /// Oscillation-detector implementation: "incremental" (default) is the
  /// incremental-hash + Brent detector; "canonical" is the PR-8
  /// full-canonicalisation detector, kept for the differential suite and
  /// the bench_sim ablation. Both are exact and byte-identical.
  std::string detector = "incremental";
  /// Test/debug seam: the incremental detector's per-step hash is masked
  /// with this value before comparison, so tests can force hash collisions
  /// and exercise the canonical-verification path. Results are unaffected
  /// by construction (collisions are always verified away); never part of
  /// a wire request.
  std::uint64_t detector_hash_mask = ~0ULL;
};

/// What one run did. Every field is deterministic in (instance, options) —
/// SimResult is rendered into wire responses and campaign reports, so it
/// carries no wall-clock or scheduling state at all.
struct SimResult {
  /// The event queue drained completely: the protocol quiesced.
  bool converged = false;
  /// An exact machine-state repeat was found after the churn schedule was
  /// exhausted: the run provably cycles forever under this schedule.
  bool oscillating = false;
  /// Neither verdict: the max_steps budget cut the run off undecided. A
  /// cutoff run carries NO final_assignment and fixed_point_stable=false —
  /// mid-flight selections are not a fixed point and are never reported as
  /// one.
  bool cutoff = false;
  /// Events processed (== max_steps when the budget cut the run off).
  std::uint64_t steps = 0;
  /// Virtual time of the last processed event.
  std::uint64_t ticks = 0;
  /// Announcement/withdrawal messages enqueued (including any lost to a
  /// link flap before delivery).
  std::uint64_t messages = 0;
  /// Times some node changed its selected path.
  std::uint64_t route_changes = 0;
  /// Virtual time at which the final selection was reached (converged runs).
  std::uint64_t convergence_tick = 0;
  /// Steps between the first occurrence of the repeated state and its
  /// repeat (oscillating runs; 0 otherwise).
  std::uint64_t cycle_length = 0;
  /// Whether the final selections satisfy spp::is_stable_assignment — for a
  /// converged run this is the fixed-point-vs-stability check the
  /// differential suite extends to the SAT oracle. Always false on cutoff.
  bool fixed_point_stable = false;
  /// The scenario that ran (echoed for reports).
  std::string scenario;
  /// The suppression policy that ran (echoed for reports).
  std::string suppression;
  /// Final selected path per node (nodes routing to nothing are absent).
  /// Empty on cutoff runs: a truncated run has no final selection.
  spp::Assignment final_assignment;
  /// One line per processed event when SimOptions::record_trace is set.
  std::vector<std::string> trace;
};

/// Runs the event-driven SPVP simulation of `instance` under `options`.
/// Deterministic in its arguments; throws fsr::InvalidArgument on an
/// unknown scenario/suppression/detector name or a zero max_steps.
SimResult simulate(const spp::SppInstance& instance, const SimOptions& options);

}  // namespace fsr::sim

#endif  // FSR_SIM_SIMULATOR_H
