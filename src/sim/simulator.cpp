#include "sim/simulator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/rng.h"

namespace fsr::sim {

namespace {

using spp::Assignment;
using spp::Path;
using spp::SppInstance;

using Link = std::pair<std::string, std::string>;  // normalised (min, max)

Link link_of(const std::string& u, const std::string& v) {
  return u < v ? Link{u, v} : Link{v, u};
}

// -- hashing primitives -------------------------------------------------------
//
// The incremental detector keeps one 64-bit accumulator per state component.
// Set-like components (selections, adj-rib-ins, down links) XOR avalanched
// FNV-1a entry hashes, so insert/erase are O(1) at the mutation site. The
// time-relative components (the event queue and the MRAI timers, whose
// canonical form uses offsets from the current tick) instead accumulate
//   sum over entries of entry_hash * R^(absolute tick)   (mod 2^64)
// for an odd constant R: multiplying the sum by R^(-now) at read time yields
// a value that depends only on the RELATIVE offsets, so the accumulator is
// translation-invariant without ever being rebuilt. R is odd, hence
// invertible mod 2^64.

constexpr std::uint64_t k_fnv_offset = 1469598103934665603ULL;
constexpr std::uint64_t k_fnv_prime = 1099511628211ULL;
constexpr std::uint64_t k_time_base = 0x9E3779B97F4A7C15ULL;  // odd

/// Multiplicative inverse mod 2^64 by Newton iteration (odd inputs only).
constexpr std::uint64_t mul_inverse(std::uint64_t a) {
  std::uint64_t x = a;  // correct to 3 bits; each round doubles precision
  for (int i = 0; i < 6; ++i) x *= 2 - a * x;
  return x;
}

constexpr std::uint64_t k_time_base_inv = mul_inverse(k_time_base);
static_assert(k_time_base * k_time_base_inv == 1, "R must be invertible");

std::uint64_t pow_u64(std::uint64_t base, std::uint64_t exp) {
  std::uint64_t result = 1;
  while (exp != 0) {
    if ((exp & 1) != 0) result *= base;
    base *= base;
    exp >>= 1;
  }
  return result;
}

/// splitmix64 finalizer: spreads entry hashes before they meet the XOR /
/// sum accumulators, so structured inputs cannot cancel systematically.
std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t fnv_byte(std::uint64_t h, unsigned char b) {
  return (h ^ b) * k_fnv_prime;
}

std::uint64_t fnv_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) h = fnv_byte(h, static_cast<unsigned char>(c));
  return fnv_byte(h, 0x1F);  // terminator keeps concatenations unambiguous
}

std::uint64_t fnv_path(std::uint64_t h, const Path& path) {
  for (const std::string& hop : path) h = fnv_str(h, hop);
  return fnv_byte(h, 0x1E);
}

/// One scheduled event. `seq` is the global insertion counter: the queue
/// pops in (tick, seq) order, so ties resolve by enqueue order and the
/// whole run is a deterministic function of the initial schedule.
struct Event {
  enum class Kind : std::uint8_t {
    activate,       // a = node: (re)run the selection rule, advertise changes
    deliver,        // a -> b carrying `payload` (nullopt = withdrawal)
    timer,          // a = node: MRAI window expired, flush batched changes
    link_down,      // a~b fails: in-flight lost, both ends withdraw state
    link_up,        // a~b recovers: sessions re-establish, both ends re-send
    session_reset,  // a~b session drops + re-establishes in one tick
  };

  std::uint64_t tick = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::activate;
  std::string a;
  std::string b;
  std::optional<Path> payload;
  std::uint64_t epoch = 0;  // deliver: sending link's epoch (stale = lost)
};

struct EventAfter {
  bool operator()(const Event& x, const Event& y) const noexcept {
    if (x.tick != y.tick) return x.tick > y.tick;
    return x.seq > y.seq;
  }
};

const char* kind_name(Event::Kind kind) noexcept {
  switch (kind) {
    case Event::Kind::activate: return "activate";
    case Event::Kind::deliver: return "deliver";
    case Event::Kind::timer: return "timer";
    case Event::Kind::link_down: return "link-down";
    case Event::Kind::link_up: return "link-up";
    case Event::Kind::session_reset: return "session-reset";
  }
  return "activate";
}

enum class Suppression : std::uint8_t { none, split_horizon, poisoned_reverse };

Suppression parse_suppression(const std::string& name) {
  if (name == "split-horizon") return Suppression::split_horizon;
  if (name == "poisoned-reverse") return Suppression::poisoned_reverse;
  return Suppression::none;
}

/// The whole machine. Built once per detector pass; everything mutable
/// lives here, every mutation site keeps the per-component hashes in step,
/// and the canonical-state renderer can still see all of it for
/// verification.
class Machine {
 public:
  Machine(const SppInstance& instance, const SimOptions& options)
      : instance_(instance),
        options_(options),
        suppression_(parse_suppression(options.suppression)) {
    util::Rng rng(options.seed);
    for (const auto& [u, v] : instance.edges()) {
      delay_[link_of(u, v)] = static_cast<std::uint64_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(
                 options.max_link_delay < 1 ? 1 : options.max_link_delay)));
      if (u != instance.destination()) adjacency_[u].push_back(v);
      if (v != instance.destination()) adjacency_[v].push_back(u);
    }
    // Deterministic neighbour order regardless of edge declaration order.
    for (auto& [node, neighbours] : adjacency_) {
      std::sort(neighbours.begin(), neighbours.end());
    }
    schedule_scenario(rng);
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::uint64_t steps() const noexcept { return steps_; }

  /// True once the churn schedule is exhausted: from here on the machine is
  /// a closed deterministic transition system and oscillation detection is
  /// meaningful.
  bool detecting() const noexcept { return scheduled_remaining_ == 0; }

  /// Processes the next event (the queue must be non-empty).
  void step() {
    Event event = pop();
    now_ = event.tick;
    ++steps_;
    process(event);
  }

  /// The incrementally-maintained 64-bit state hash, rescaled so the
  /// time-relative components depend only on offsets from `now_`. Masked
  /// with the test seam so collision handling can be forced.
  std::uint64_t state_hash() {
    drain_expired_timers();
    const std::uint64_t scale = pow_u64(k_time_base_inv, now_);
    std::uint64_t h = k_fnv_offset;
    h = (h ^ sel_hash_) * k_fnv_prime;
    h = (h ^ rib_hash_) * k_fnv_prime;
    h = (h ^ down_hash_) * k_fnv_prime;
    h = (h ^ (timer_sum_ * scale)) * k_fnv_prime;
    h = (h ^ (queue_sum_ * scale)) * k_fnv_prime;
    return avalanche(h) & options_.detector_hash_mask;
  }

  /// Canonical rendering of the ENTIRE machine state with absolute times
  /// replaced by offsets from `now_` and sequence numbers by their relative
  /// order. Two states with equal strings evolve identically (the queue
  /// comparator only reads tick and relative seq order), so a repeat proves
  /// a cycle — the detection is exact, never a heuristic. The incremental
  /// detector renders this only at Brent teleports and on hash matches.
  std::string canonical_state() const {
    std::string out;
    out.reserve(256);
    out += "sel:";
    for (const auto& [node, path] : selections_) {
      out += node;
      out += '=';
      out += spp::path_name(path);
      out += ';';
    }
    out += "|rib:";
    for (const auto& [node, rib] : rib_in_) {
      for (const auto& [peer, path] : rib) {
        out += node;
        out += '<';
        out += peer;
        out += '=';
        out += spp::path_name(path);
        out += ';';
      }
    }
    out += "|down:";
    for (const auto& link : down_) {
      out += link.first;
      out += '~';
      out += link.second;
      out += ';';
    }
    if (options_.mrai_ticks > 0) {
      out += "|mrai:";
      for (const auto& [node, timer] : timers_) {
        if (timer.ready_tick > now_ || timer.dirty || timer.pending) {
          out += node;
          out += '=';
          out += std::to_string(
              timer.ready_tick > now_ ? timer.ready_tick - now_ : 0);
          out += timer.dirty ? 'd' : '-';
          out += timer.pending ? 'p' : '-';
          out += ';';
        }
      }
    }
    out += "|q:";
    std::vector<Event> in_flight = heap_;
    std::sort(in_flight.begin(), in_flight.end(),
              [](const Event& x, const Event& y) {
                if (x.tick != y.tick) return x.tick < y.tick;
                return x.seq < y.seq;
              });
    for (const Event& event : in_flight) {
      out += std::to_string(event.tick - now_);
      out += ',';
      out += kind_name(event.kind);
      out += ',';
      out += event.a;
      out += '>';
      out += event.b;
      out += ',';
      out += event.payload.has_value() ? spp::path_name(*event.payload)
                                       : std::string("w");
      const auto it = epoch_.find(link_of(event.a, event.b));
      const bool fresh =
          event.kind != Event::Kind::deliver ||
          (it != epoch_.end() && it->second == event.epoch);
      out += fresh ? 'f' : 's';
      out += ';';
    }
    return out;
  }

  /// Assembles the SimResult for this machine's current stop state. The
  /// verdict gating is the satellite bugfix: a cutoff run (neither verdict)
  /// reports NO final assignment and fixed_point_stable=false — mid-flight
  /// selections must never read as a fixed point.
  SimResult result(bool oscillating, std::uint64_t cycle_length) {
    SimResult result;
    result.scenario = options_.scenario;
    result.suppression = options_.suppression;
    result.steps = steps_;
    result.ticks = now_;
    result.messages = messages_;
    result.route_changes = route_changes_;
    result.oscillating = oscillating;
    result.cycle_length = cycle_length;
    result.converged = heap_.empty() && !oscillating;
    if (result.converged) result.convergence_tick = last_change_tick_;
    result.cutoff = !result.converged && !result.oscillating;
    if (!result.cutoff) {
      result.final_assignment = selections_;
      result.fixed_point_stable =
          spp::is_stable_assignment(instance_, selections_);
    }
    if (options_.record_trace) result.trace = std::move(trace_);
    return result;
  }

 private:
  // -- schedule construction (all randomness is consumed here) --------------

  void schedule_scenario(util::Rng& rng) {
    const std::vector<std::string> nodes = instance_.nodes();
    const auto schedule = [&](std::uint64_t tick, Event::Kind kind,
                              std::string a, std::string b = {}) {
      Event event;
      event.tick = tick;
      event.kind = kind;
      event.a = std::move(a);
      event.b = std::move(b);
      push(std::move(event));
      ++scheduled_remaining_;
    };
    if (options_.scenario == "staged") {
      const auto window = static_cast<std::int64_t>(3 * nodes.size());
      for (const std::string& node : nodes) {
        schedule(static_cast<std::uint64_t>(rng.uniform_int(0, window)),
                 Event::Kind::activate, node);
      }
    } else {
      for (const std::string& node : nodes) {
        schedule(0, Event::Kind::activate, node);
      }
    }
    if (instance_.edges().empty()) return;
    const auto& edges = instance_.edges();
    const auto pick = edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1))];
    if (options_.scenario == "link-flap") {
      const auto down = static_cast<std::uint64_t>(rng.uniform_int(4, 12));
      const auto duration = static_cast<std::uint64_t>(rng.uniform_int(3, 9));
      schedule(down, Event::Kind::link_down, pick.first, pick.second);
      schedule(down + duration, Event::Kind::link_up, pick.first, pick.second);
    } else if (options_.scenario == "session-reset") {
      const auto reset = static_cast<std::uint64_t>(rng.uniform_int(4, 12));
      schedule(reset, Event::Kind::session_reset, pick.first, pick.second);
    }
  }

  // -- event processing ------------------------------------------------------

  void process(const Event& event) {
    switch (event.kind) {
      case Event::Kind::activate:
        --scheduled_remaining_;
        trace_line(event, activate(event.a) ? "changed" : "quiet");
        break;
      case Event::Kind::deliver: {
        const Link link = link_of(event.a, event.b);
        if (event.epoch != epoch_[link] || down_.contains(link)) {
          trace_line(event, "lost");
          break;
        }
        auto& rib = rib_in_[event.b];
        const auto it = rib.find(event.a);
        if (it != rib.end()) {
          rib_hash_ ^= rib_entry_hash(event.b, event.a, it->second);
        }
        if (event.payload.has_value()) {
          rib[event.a] = *event.payload;
          rib_hash_ ^= rib_entry_hash(event.b, event.a, *event.payload);
        } else if (it != rib.end()) {
          rib.erase(it);
        }
        trace_line(event, activate(event.b) ? "changed" : "quiet");
        break;
      }
      case Event::Kind::timer: {
        NodeTimer& timer = timers_[event.a];
        timer.pending = false;
        const bool had_changes = timer.dirty;
        retime(event.a);
        if (had_changes) flush(event.a);
        trace_line(event, had_changes ? "flush" : "quiet");
        break;
      }
      case Event::Kind::link_down: {
        --scheduled_remaining_;
        const Link link = link_of(event.a, event.b);
        bump_epoch(link);  // in-flight messages on the link are lost
        if (down_.insert(link).second) down_hash_ ^= down_entry_hash(link);
        sever(event.a, event.b);
        sever(event.b, event.a);
        trace_line(event, "down");
        break;
      }
      case Event::Kind::link_up: {
        --scheduled_remaining_;
        const Link link = link_of(event.a, event.b);
        if (down_.erase(link) > 0) down_hash_ ^= down_entry_hash(link);
        reestablish(event.a, event.b);
        reestablish(event.b, event.a);
        // A recovered destination link restores direct routes: re-select.
        activate(event.a);
        activate(event.b);
        trace_line(event, "up");
        break;
      }
      case Event::Kind::session_reset: {
        --scheduled_remaining_;
        const Link link = link_of(event.a, event.b);
        bump_epoch(link);  // the old session's in-flight messages are lost
        sever(event.a, event.b);
        sever(event.b, event.a);
        reestablish(event.a, event.b);
        reestablish(event.b, event.a);
        activate(event.a);
        activate(event.b);
        trace_line(event, "reset");
        break;
      }
    }
  }

  /// `node` forgets everything it heard from `peer` and re-selects (a
  /// selection change propagates to its other neighbours as usual).
  void sever(const std::string& node, const std::string& peer) {
    if (node == instance_.destination()) return;
    const auto rib = rib_in_.find(node);
    if (rib != rib_in_.end()) {
      const auto it = rib->second.find(peer);
      if (it != rib->second.end()) {
        rib_hash_ ^= rib_entry_hash(node, peer, it->second);
        rib->second.erase(it);
      }
    }
    activate(node);
  }

  /// A fresh session towards `peer`: `node` re-sends its current selection
  /// (or an explicit withdrawal) so the peer's adj-rib-in repopulates —
  /// subject to the suppression policy like any other advertisement.
  void reestablish(const std::string& node, const std::string& peer) {
    if (node == instance_.destination() || peer == instance_.destination()) {
      return;
    }
    send_policy(node, peer, current_selection(node));
  }

  /// Re-runs the selection rule at `node`; on a change, records it and
  /// advertises (directly or behind the MRAI timer). Returns true when the
  /// selection changed.
  bool activate(const std::string& node) {
    if (node == instance_.destination()) return false;
    const std::optional<Path> best = select(node);
    const auto it = selections_.find(node);
    const bool had = it != selections_.end();
    if (best.has_value() == had &&
        (!best.has_value() || *best == it->second)) {
      return false;
    }
    if (had) sel_hash_ ^= sel_entry_hash(node, it->second);
    if (best.has_value()) {
      sel_hash_ ^= sel_entry_hash(node, *best);
      selections_[node] = *best;
    } else {
      selections_.erase(it);
    }
    ++route_changes_;
    last_change_tick_ = now_;
    advertise(node);
    return true;
  }

  /// The SPVP selection rule over the node's adj-rib-in. With every
  /// incident link up this is exactly spp::best_consistent_choice applied
  /// to the advertised view; link churn only adds a filter dropping
  /// candidates whose first hop crosses a currently-down link.
  std::optional<Path> select(const std::string& node) {
    Assignment view;
    const auto rib = rib_in_.find(node);
    if (rib != rib_in_.end()) {
      for (const auto& [peer, path] : rib->second) {
        if (!down_.contains(link_of(node, peer))) view[peer] = path;
      }
    }
    if (down_.empty()) return spp::best_consistent_choice(instance_, node, view);
    for (const Path& candidate : instance_.permitted(node)) {
      if (down_.contains(link_of(candidate[0], candidate[1]))) continue;
      if (candidate.size() == 2) return candidate;
      const auto it = view.find(candidate[1]);
      if (it == view.end()) continue;
      if (candidate.size() != it->second.size() + 1) continue;
      if (std::equal(candidate.begin() + 1, candidate.end(),
                     it->second.begin())) {
        return candidate;
      }
    }
    return std::nullopt;
  }

  /// Propagates a selection change: immediately under triggered updates,
  /// batched behind the per-node timer inside an MRAI window.
  void advertise(const std::string& node) {
    if (options_.mrai_ticks == 0) {
      flush(node);
      return;
    }
    NodeTimer& timer = timers_[node];
    if (now_ >= timer.ready_tick) {
      flush(node);
      return;
    }
    timer.dirty = true;
    if (!timer.pending) {
      timer.pending = true;
      Event event;
      event.tick = timer.ready_tick;
      event.kind = Event::Kind::timer;
      event.a = node;
      push(std::move(event));
    }
    retime(node);
  }

  /// Sends the node's current selection to every neighbour over an up link
  /// (subject to the suppression policy) and opens the next MRAI window.
  void flush(const std::string& node) {
    const std::optional<Path> selection = current_selection(node);
    const auto adj = adjacency_.find(node);
    if (adj != adjacency_.end()) {
      for (const std::string& peer : adj->second) {
        if (peer == instance_.destination()) continue;
        if (down_.contains(link_of(node, peer))) continue;
        send_policy(node, peer, selection);
      }
    }
    if (options_.mrai_ticks > 0) {
      NodeTimer& timer = timers_[node];
      timer.ready_tick = now_ + options_.mrai_ticks;
      timer.dirty = false;
      retime(node);
    }
  }

  /// One advertisement under the suppression policy: towards the selected
  /// path's next hop, split-horizon sends nothing and poisoned-reverse
  /// sends an explicit withdrawal; everyone else gets the selection.
  void send_policy(const std::string& from, const std::string& to,
                   const std::optional<Path>& selection) {
    const bool toward_next_hop = selection.has_value() &&
                                 selection->size() >= 2 &&
                                 (*selection)[1] == to;
    if (toward_next_hop && suppression_ == Suppression::split_horizon) return;
    if (toward_next_hop && suppression_ == Suppression::poisoned_reverse) {
      send(from, to, std::nullopt);
      return;
    }
    send(from, to, selection);
  }

  void send(const std::string& from, const std::string& to,
            std::optional<Path> payload) {
    const Link link = link_of(from, to);
    push(Event{now_ + delay_.at(link), 0, Event::Kind::deliver, from, to,
               std::move(payload), epoch_[link]});
    ++messages_;
  }

  std::optional<Path> current_selection(const std::string& node) const {
    const auto it = selections_.find(node);
    if (it == selections_.end()) return std::nullopt;
    return it->second;
  }

  // -- queue (binary heap over a visible vector, so epoch bumps can retag
  //    in-flight hash contributions in place) ------------------------------

  void push(Event event) {
    event.seq = next_seq_++;
    queue_sum_ += event_term(event);
    heap_.push_back(std::move(event));
    std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  }

  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event event = std::move(heap_.back());
    heap_.pop_back();
    queue_sum_ -= event_term(event);
    return event;
  }

  /// Loses every in-flight message on `link`: the epoch bump flips their
  /// canonical freshness flag, so their queue-hash terms are swapped out
  /// under the old epoch and back in under the new one.
  void bump_epoch(const Link& link) {
    for (const Event& event : heap_) {
      if (event.kind == Event::Kind::deliver &&
          link_of(event.a, event.b) == link) {
        queue_sum_ -= event_term(event);
      }
    }
    ++epoch_[link];
    for (const Event& event : heap_) {
      if (event.kind == Event::Kind::deliver &&
          link_of(event.a, event.b) == link) {
        queue_sum_ += event_term(event);
      }
    }
  }

  // -- per-component entry hashes -------------------------------------------

  static std::uint64_t sel_entry_hash(const std::string& node,
                                      const Path& path) {
    std::uint64_t h = fnv_byte(k_fnv_offset, 'S');
    h = fnv_str(h, node);
    h = fnv_path(h, path);
    return avalanche(h);
  }

  static std::uint64_t rib_entry_hash(const std::string& node,
                                      const std::string& peer,
                                      const Path& path) {
    std::uint64_t h = fnv_byte(k_fnv_offset, 'R');
    h = fnv_str(h, node);
    h = fnv_str(h, peer);
    h = fnv_path(h, path);
    return avalanche(h);
  }

  static std::uint64_t down_entry_hash(const Link& link) {
    std::uint64_t h = fnv_byte(k_fnv_offset, 'D');
    h = fnv_str(h, link.first);
    h = fnv_str(h, link.second);
    return avalanche(h);
  }

  /// Queue term: entry hash (content + the canonical freshness flag, read
  /// from the CURRENT epoch map) weighted by R^tick. Every call site keeps
  /// the accumulator consistent with the map: push/pop add/subtract under
  /// the epoch map of that moment, and bump_epoch retags affected events.
  std::uint64_t event_term(const Event& event) const {
    std::uint64_t h = fnv_byte(k_fnv_offset, 'Q');
    h = fnv_byte(h, static_cast<unsigned char>(event.kind));
    h = fnv_str(h, event.a);
    h = fnv_str(h, event.b);
    if (event.payload.has_value()) {
      h = fnv_path(h, *event.payload);
    } else {
      h = fnv_byte(h, 'w');
    }
    const auto it = epoch_.find(link_of(event.a, event.b));
    const bool fresh = event.kind != Event::Kind::deliver ||
                       (it != epoch_.end() && it->second == event.epoch);
    h = fnv_byte(h, fresh ? 'f' : 's');
    return avalanche(h) * pow_u64(k_time_base, event.tick);
  }

  // -- MRAI timer hashing ----------------------------------------------------

  struct NodeTimer {
    std::uint64_t ready_tick = 0;  // earliest tick the node may flush again
    bool pending = false;          // a timer event is in the queue
    bool dirty = false;            // changes batched since the last flush
    std::uint64_t contrib = 0;     // this entry's current timer_sum_ term
  };

  /// A timer entry's term, mirroring the canonical renderer's visibility
  /// rule: entries that are neither pending nor dirty and whose window has
  /// lapsed contribute nothing. Visible entries always have
  /// ready_tick >= now_, so the R^ready_tick weighting rescales to the
  /// rendered offset exactly.
  std::uint64_t timer_term(const std::string& node,
                           const NodeTimer& timer) const {
    if (!timer.pending && !timer.dirty && timer.ready_tick <= now_) return 0;
    std::uint64_t h = fnv_byte(k_fnv_offset, 'T');
    h = fnv_str(h, node);
    h = fnv_byte(h, timer.dirty ? 'd' : '-');
    h = fnv_byte(h, timer.pending ? 'p' : '-');
    return avalanche(h) * pow_u64(k_time_base, timer.ready_tick);
  }

  /// Recomputes `node`'s timer contribution after any mutation (idempotent:
  /// the stored contribution is subtracted first). Entries that can lapse
  /// silently — open window, nothing pending or dirty — are queued for lazy
  /// expiry so time passing alone cannot leave a stale term behind.
  void retime(const std::string& node) {
    NodeTimer& timer = timers_[node];
    timer_sum_ -= timer.contrib;
    timer.contrib = timer_term(node, timer);
    timer_sum_ += timer.contrib;
    if (!timer.pending && !timer.dirty && timer.ready_tick > now_) {
      timer_expiry_.push({timer.ready_tick, node});
    }
  }

  /// Lazily drops timer terms whose window lapsed with no event touching
  /// them (retime is idempotent, so stale expiry entries are harmless).
  void drain_expired_timers() {
    while (!timer_expiry_.empty() && timer_expiry_.top().first <= now_) {
      const std::string node = timer_expiry_.top().second;
      timer_expiry_.pop();
      if (timers_.find(node) != timers_.end()) retime(node);
    }
  }

  // -- trace recording -------------------------------------------------------

  void trace_line(const Event& event, const char* note) {
    if (!options_.record_trace) return;
    std::string line = "t=" + std::to_string(event.tick);
    line += ' ';
    line += kind_name(event.kind);
    line += ' ';
    line += event.a;
    if (!event.b.empty()) {
      line += '>';
      line += event.b;
    }
    if (event.kind == Event::Kind::deliver) {
      line += ' ';
      line += event.payload.has_value() ? spp::path_name(*event.payload)
                                        : std::string("withdraw");
    }
    line += ' ';
    line += note;
    trace_.push_back(std::move(line));
  }

  // -- state -----------------------------------------------------------------

  const SppInstance& instance_;
  const SimOptions& options_;
  const Suppression suppression_;

  std::map<std::string, std::vector<std::string>> adjacency_;
  std::map<Link, std::uint64_t> delay_;
  std::map<Link, std::uint64_t> epoch_;
  std::set<Link> down_;

  Assignment selections_;
  std::map<std::string, std::map<std::string, Path>> rib_in_;
  std::map<std::string, NodeTimer> timers_;

  std::vector<Event> heap_;  // binary heap under EventAfter
  std::uint64_t next_seq_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t scheduled_remaining_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t route_changes_ = 0;
  std::uint64_t last_change_tick_ = 0;
  std::vector<std::string> trace_;

  // Incremental state-hash accumulators (see the hashing-primitives note).
  std::uint64_t sel_hash_ = 0;
  std::uint64_t rib_hash_ = 0;
  std::uint64_t down_hash_ = 0;
  std::uint64_t timer_sum_ = 0;
  std::uint64_t queue_sum_ = 0;
  std::priority_queue<std::pair<std::uint64_t, std::string>,
                      std::vector<std::pair<std::uint64_t, std::string>>,
                      std::greater<>>
      timer_expiry_;
};

// -- detectors ----------------------------------------------------------------

/// The PR-8 detector: canonicalise the full state after every post-churn
/// step, report the first repeat. O(steps x state-size) time and memory;
/// kept for the differential suite and the bench_sim ablation.
SimResult run_canonical(const SppInstance& instance,
                        const SimOptions& options) {
  Machine machine(instance, options);
  // step -> canonical state, populated once the churn schedule is done;
  // an exact repeat proves the run cycles forever.
  std::unordered_map<std::string, std::uint64_t> seen_states;
  while (!machine.empty() && machine.steps() < options.max_steps) {
    machine.step();
    if (machine.detecting()) {
      const auto [it, inserted] =
          seen_states.emplace(machine.canonical_state(), machine.steps());
      if (!inserted) {
        return machine.result(true, machine.steps() - it->second);
      }
    }
  }
  return machine.result(false, 0);
}

/// The incremental detector: Brent's cycle detection over the post-churn
/// state-hash sequence, O(1) hashing work per step. The canonical string is
/// rendered only at Brent teleports and on hash matches; a match whose
/// canonical strings differ is a collision (counted, never believed). The
/// pass appends each post-churn hash to a log (8 bytes per step — against
/// the canonical detector's full state string per step) so that once the
/// minimal period lambda is confirmed, the first repeat can be located by
/// scanning the log: the earliest index whose hash recurs lambda entries
/// later is the mu candidate, verified canonically by ONE fresh replica
/// that then sits exactly where the canonical detector stopped — so the
/// reported SimResult (steps, ticks, message counts, stop state) is
/// byte-identical to the canonical detector's.
SimResult run_incremental(const SppInstance& instance,
                          const SimOptions& options,
                          std::uint64_t& collisions) {
  Machine machine(instance, options);
  std::vector<std::uint64_t> hashes;  // post-churn hash log, in step order
  bool have_tortoise = false;
  std::uint64_t tortoise_hash = 0;
  std::string tortoise_canonical;
  std::uint64_t power = 1;
  std::uint64_t lam = 1;
  std::optional<std::uint64_t> lambda;

  while (!machine.empty() && machine.steps() < options.max_steps) {
    machine.step();
    if (!machine.detecting()) continue;
    const std::uint64_t h = machine.state_hash();
    hashes.push_back(h);
    if (!have_tortoise) {
      have_tortoise = true;
      tortoise_hash = h;
      tortoise_canonical = machine.canonical_state();
      continue;
    }
    if (h == tortoise_hash) {
      if (machine.canonical_state() == tortoise_canonical) {
        lambda = lam;
        break;
      }
      ++collisions;  // verification rejected the hash match
    }
    if (lam == power) {
      tortoise_hash = h;
      tortoise_canonical = machine.canonical_state();
      power <<= 1;
      lam = 0;
    }
    ++lam;
  }

  if (!lambda.has_value()) return machine.result(false, 0);

  // Period confirmed. Locate mu — the first post-churn step whose state
  // recurs — from the hash log: candidates are indices k with
  // hashes[k] == hashes[k + lambda] (the Brent anchor guarantees the log
  // covers the true mu and mu + lambda). Each candidate is verified by a
  // fresh replica advanced to the k-th post-churn state and then lambda
  // states further; on a genuine repeat that replica stands exactly where
  // the canonical detector stopped, and its counters ARE the result. A
  // rejected candidate (collision) restarts the replica — rare by 64-bit
  // hashing, pathological only under a test-forced detector_hash_mask.
  const std::uint64_t lam_v = *lambda;
  const auto advance = [&options](Machine& m, std::uint64_t states) {
    while (states > 0 && !m.empty() && m.steps() < options.max_steps) {
      m.step();
      if (m.detecting()) --states;
    }
  };
  for (std::size_t k = 0; k + lam_v < hashes.size(); ++k) {
    if (hashes[k] != hashes[k + lam_v]) continue;
    Machine replica(instance, options);
    advance(replica, static_cast<std::uint64_t>(k) + 1);
    const std::string first = replica.canonical_state();
    advance(replica, lam_v);
    if (replica.canonical_state() == first) {
      return replica.result(true, lam_v);
    }
    ++collisions;
  }
  // Unreachable: the Brent pass canonically confirmed a repeat, so some
  // candidate above verifies. Kept as a defensive fall-through.
  return machine.result(true, lam_v);
}

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names{"steady", "staged", "link-flap",
                                              "session-reset"};
  return names;
}

bool is_scenario_name(const std::string& name) {
  for (const std::string& known : scenario_names()) {
    if (known == name) return true;
  }
  return false;
}

const std::vector<std::string>& suppression_names() {
  static const std::vector<std::string> names{"none", "split-horizon",
                                              "poisoned-reverse"};
  return names;
}

bool is_suppression_name(const std::string& name) {
  for (const std::string& known : suppression_names()) {
    if (known == name) return true;
  }
  return false;
}

SimResult simulate(const SppInstance& instance, const SimOptions& options) {
  if (!is_scenario_name(options.scenario)) {
    throw InvalidArgument("unknown simulation scenario '" + options.scenario +
                          "' (expected one of: steady, staged, link-flap, "
                          "session-reset)");
  }
  if (!is_suppression_name(options.suppression)) {
    throw InvalidArgument("unknown suppression policy '" + options.suppression +
                          "' (expected one of: none, split-horizon, "
                          "poisoned-reverse)");
  }
  if (options.detector != "incremental" && options.detector != "canonical") {
    throw InvalidArgument("unknown oscillation detector '" + options.detector +
                          "' (expected incremental or canonical)");
  }
  if (options.max_steps == 0) {
    throw InvalidArgument("simulation max_steps must be >= 1");
  }

  obs::Span span("sim.run");
  span.arg("instance", instance.name());
  span.arg("scenario", options.scenario);

  std::uint64_t collisions = 0;
  SimResult result = options.detector == "canonical"
                         ? run_canonical(instance, options)
                         : run_incremental(instance, options, collisions);

  // Per-run registry flush (boundary counting, per obs/metrics.h): one
  // relaxed add per instrument per run, never per event.
  static obs::Counter& runs = obs::registry().counter("sim.runs");
  static obs::Counter& messages = obs::registry().counter("sim.messages");
  static obs::Counter& converged = obs::registry().counter("sim.converged");
  static obs::Counter& oscillations =
      obs::registry().counter("sim.oscillations");
  static obs::Counter& hash_collisions =
      obs::registry().counter("sim.hash_collisions");
  static obs::Histogram& steps_histogram =
      obs::registry().histogram("sim.convergence_steps");
  runs.add(1);
  messages.add(result.messages);
  if (result.converged) {
    converged.add(1);
    steps_histogram.record(result.steps);
  }
  if (result.oscillating) oscillations.add(1);
  if (collisions > 0) hash_collisions.add(collisions);

  span.arg("steps", result.steps);
  span.arg("messages", result.messages);
  span.arg("converged", result.converged);
  obs::record_event(obs::RecorderEventKind::mark,
                    "sim:" + options.scenario + ":" + instance.name(),
                    result.steps, result.messages);
  return result;
}

}  // namespace fsr::sim
