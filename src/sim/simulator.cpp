#include "sim/simulator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/rng.h"

namespace fsr::sim {

namespace {

using spp::Assignment;
using spp::Path;
using spp::SppInstance;

using Link = std::pair<std::string, std::string>;  // normalised (min, max)

Link link_of(const std::string& u, const std::string& v) {
  return u < v ? Link{u, v} : Link{v, u};
}

/// One scheduled event. `seq` is the global insertion counter: the queue
/// pops in (tick, seq) order, so ties resolve by enqueue order and the
/// whole run is a deterministic function of the initial schedule.
struct Event {
  enum class Kind : std::uint8_t {
    activate,       // a = node: (re)run the selection rule, advertise changes
    deliver,        // a -> b carrying `payload` (nullopt = withdrawal)
    timer,          // a = node: MRAI window expired, flush batched changes
    link_down,      // a~b fails: in-flight lost, both ends withdraw state
    link_up,        // a~b recovers: sessions re-establish, both ends re-send
    session_reset,  // a~b session drops + re-establishes in one tick
  };

  std::uint64_t tick = 0;
  std::uint64_t seq = 0;
  Kind kind = Kind::activate;
  std::string a;
  std::string b;
  std::optional<Path> payload;
  std::uint64_t epoch = 0;  // deliver: sending link's epoch (stale = lost)
};

struct EventAfter {
  bool operator()(const Event& x, const Event& y) const noexcept {
    if (x.tick != y.tick) return x.tick > y.tick;
    return x.seq > y.seq;
  }
};

const char* kind_name(Event::Kind kind) noexcept {
  switch (kind) {
    case Event::Kind::activate: return "activate";
    case Event::Kind::deliver: return "deliver";
    case Event::Kind::timer: return "timer";
    case Event::Kind::link_down: return "link-down";
    case Event::Kind::link_up: return "link-up";
    case Event::Kind::session_reset: return "session-reset";
  }
  return "activate";
}

/// The whole machine. Built once per simulate() call; everything mutable
/// lives here so the canonical-state renderer can see all of it.
class Machine {
 public:
  Machine(const SppInstance& instance, const SimOptions& options)
      : instance_(instance), options_(options) {
    util::Rng rng(options.seed);
    for (const auto& [u, v] : instance.edges()) {
      delay_[link_of(u, v)] = static_cast<std::uint64_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(
                 options.max_link_delay < 1 ? 1 : options.max_link_delay)));
      if (u != instance.destination()) adjacency_[u].push_back(v);
      if (v != instance.destination()) adjacency_[v].push_back(u);
    }
    // Deterministic neighbour order regardless of edge declaration order.
    for (auto& [node, neighbours] : adjacency_) {
      std::sort(neighbours.begin(), neighbours.end());
    }
    schedule_scenario(rng);
  }

  SimResult run() {
    SimResult result;
    result.scenario = options_.scenario;
    // step -> canonical state, populated once the churn schedule is done;
    // an exact repeat proves the run cycles forever.
    std::unordered_map<std::string, std::uint64_t> seen_states;

    while (!queue_.empty() && result.steps < options_.max_steps) {
      Event event = queue_.top();
      queue_.pop();
      now_ = event.tick;
      ++result.steps;
      process(event);
      if (scheduled_remaining_ == 0) {
        const auto [it, inserted] =
            seen_states.emplace(canonical_state(), result.steps);
        if (!inserted) {
          result.oscillating = true;
          result.cycle_length = result.steps - it->second;
          break;
        }
      }
    }

    result.ticks = now_;
    result.converged = queue_.empty() && !result.oscillating;
    if (result.converged) result.convergence_tick = last_change_tick_;
    result.messages = messages_;
    result.route_changes = route_changes_;
    result.final_assignment = selections_;
    result.fixed_point_stable =
        spp::is_stable_assignment(instance_, selections_);
    if (options_.record_trace) result.trace = std::move(trace_);
    return result;
  }

 private:
  // -- schedule construction (all randomness is consumed here) --------------

  void schedule_scenario(util::Rng& rng) {
    const std::vector<std::string> nodes = instance_.nodes();
    const auto schedule = [&](std::uint64_t tick, Event::Kind kind,
                              std::string a, std::string b = {}) {
      Event event;
      event.tick = tick;
      event.kind = kind;
      event.a = std::move(a);
      event.b = std::move(b);
      push(std::move(event));
      ++scheduled_remaining_;
    };
    if (options_.scenario == "staged") {
      const auto window = static_cast<std::int64_t>(3 * nodes.size());
      for (const std::string& node : nodes) {
        schedule(static_cast<std::uint64_t>(rng.uniform_int(0, window)),
                 Event::Kind::activate, node);
      }
    } else {
      for (const std::string& node : nodes) {
        schedule(0, Event::Kind::activate, node);
      }
    }
    if (instance_.edges().empty()) return;
    const auto& edges = instance_.edges();
    const auto pick = edges[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(edges.size()) - 1))];
    if (options_.scenario == "link-flap") {
      const auto down = static_cast<std::uint64_t>(rng.uniform_int(4, 12));
      const auto duration = static_cast<std::uint64_t>(rng.uniform_int(3, 9));
      schedule(down, Event::Kind::link_down, pick.first, pick.second);
      schedule(down + duration, Event::Kind::link_up, pick.first, pick.second);
    } else if (options_.scenario == "session-reset") {
      const auto reset = static_cast<std::uint64_t>(rng.uniform_int(4, 12));
      schedule(reset, Event::Kind::session_reset, pick.first, pick.second);
    }
  }

  // -- event processing ------------------------------------------------------

  void process(const Event& event) {
    switch (event.kind) {
      case Event::Kind::activate:
        --scheduled_remaining_;
        trace_line(event, activate(event.a) ? "changed" : "quiet");
        break;
      case Event::Kind::deliver: {
        const Link link = link_of(event.a, event.b);
        if (event.epoch != epoch_[link] || down_.contains(link)) {
          trace_line(event, "lost");
          break;
        }
        auto& rib = rib_in_[event.b];
        if (event.payload.has_value()) {
          rib[event.a] = *event.payload;
        } else {
          rib.erase(event.a);
        }
        trace_line(event, activate(event.b) ? "changed" : "quiet");
        break;
      }
      case Event::Kind::timer: {
        NodeTimer& timer = timers_[event.a];
        timer.pending = false;
        const bool had_changes = timer.dirty;
        if (had_changes) flush(event.a);
        trace_line(event, had_changes ? "flush" : "quiet");
        break;
      }
      case Event::Kind::link_down: {
        --scheduled_remaining_;
        const Link link = link_of(event.a, event.b);
        ++epoch_[link];  // in-flight messages on the link are lost
        down_.insert(link);
        sever(event.a, event.b);
        sever(event.b, event.a);
        trace_line(event, "down");
        break;
      }
      case Event::Kind::link_up: {
        --scheduled_remaining_;
        const Link link = link_of(event.a, event.b);
        down_.erase(link);
        reestablish(event.a, event.b);
        reestablish(event.b, event.a);
        // A recovered destination link restores direct routes: re-select.
        activate(event.a);
        activate(event.b);
        trace_line(event, "up");
        break;
      }
      case Event::Kind::session_reset: {
        --scheduled_remaining_;
        const Link link = link_of(event.a, event.b);
        ++epoch_[link];  // the old session's in-flight messages are lost
        sever(event.a, event.b);
        sever(event.b, event.a);
        reestablish(event.a, event.b);
        reestablish(event.b, event.a);
        activate(event.a);
        activate(event.b);
        trace_line(event, "reset");
        break;
      }
    }
  }

  /// `node` forgets everything it heard from `peer` and re-selects (a
  /// selection change propagates to its other neighbours as usual).
  void sever(const std::string& node, const std::string& peer) {
    if (node == instance_.destination()) return;
    rib_in_[node].erase(peer);
    activate(node);
  }

  /// A fresh session towards `peer`: `node` re-sends its current selection
  /// (or an explicit withdrawal) so the peer's adj-rib-in repopulates.
  void reestablish(const std::string& node, const std::string& peer) {
    if (node == instance_.destination() || peer == instance_.destination()) {
      return;
    }
    send(node, peer, current_selection(node));
  }

  /// Re-runs the selection rule at `node`; on a change, records it and
  /// advertises (directly or behind the MRAI timer). Returns true when the
  /// selection changed.
  bool activate(const std::string& node) {
    if (node == instance_.destination()) return false;
    const std::optional<Path> best = select(node);
    const auto it = selections_.find(node);
    const bool had = it != selections_.end();
    if (best.has_value() == had &&
        (!best.has_value() || *best == it->second)) {
      return false;
    }
    if (best.has_value()) {
      selections_[node] = *best;
    } else {
      selections_.erase(node);
    }
    ++route_changes_;
    last_change_tick_ = now_;
    advertise(node);
    return true;
  }

  /// The SPVP selection rule over the node's adj-rib-in. With every
  /// incident link up this is exactly spp::best_consistent_choice applied
  /// to the advertised view; link churn only adds a filter dropping
  /// candidates whose first hop crosses a currently-down link.
  std::optional<Path> select(const std::string& node) {
    Assignment view;
    const auto rib = rib_in_.find(node);
    if (rib != rib_in_.end()) {
      for (const auto& [peer, path] : rib->second) {
        if (!down_.contains(link_of(node, peer))) view[peer] = path;
      }
    }
    if (down_.empty()) return spp::best_consistent_choice(instance_, node, view);
    for (const Path& candidate : instance_.permitted(node)) {
      if (down_.contains(link_of(candidate[0], candidate[1]))) continue;
      if (candidate.size() == 2) return candidate;
      const auto it = view.find(candidate[1]);
      if (it == view.end()) continue;
      if (candidate.size() != it->second.size() + 1) continue;
      if (std::equal(candidate.begin() + 1, candidate.end(),
                     it->second.begin())) {
        return candidate;
      }
    }
    return std::nullopt;
  }

  /// Propagates a selection change: immediately under triggered updates,
  /// batched behind the per-node timer inside an MRAI window.
  void advertise(const std::string& node) {
    if (options_.mrai_ticks == 0) {
      flush(node);
      return;
    }
    NodeTimer& timer = timers_[node];
    if (now_ >= timer.ready_tick) {
      flush(node);
      return;
    }
    timer.dirty = true;
    if (!timer.pending) {
      timer.pending = true;
      Event event;
      event.tick = timer.ready_tick;
      event.kind = Event::Kind::timer;
      event.a = node;
      push(std::move(event));
    }
  }

  /// Sends the node's current selection to every neighbour over an up link
  /// and opens the next MRAI window.
  void flush(const std::string& node) {
    const std::optional<Path> selection = current_selection(node);
    const auto adj = adjacency_.find(node);
    if (adj != adjacency_.end()) {
      for (const std::string& peer : adj->second) {
        if (peer == instance_.destination()) continue;
        if (down_.contains(link_of(node, peer))) continue;
        send(node, peer, selection);
      }
    }
    if (options_.mrai_ticks > 0) {
      NodeTimer& timer = timers_[node];
      timer.ready_tick = now_ + options_.mrai_ticks;
      timer.dirty = false;
    }
  }

  void send(const std::string& from, const std::string& to,
            std::optional<Path> payload) {
    const Link link = link_of(from, to);
    push(Event{now_ + delay_.at(link), 0, Event::Kind::deliver, from, to,
               std::move(payload), epoch_[link]});
    ++messages_;
  }

  std::optional<Path> current_selection(const std::string& node) const {
    const auto it = selections_.find(node);
    if (it == selections_.end()) return std::nullopt;
    return it->second;
  }

  void push(Event event) {
    event.seq = next_seq_++;
    queue_.push(std::move(event));
  }

  // -- oscillation detection -------------------------------------------------

  /// Canonical rendering of the ENTIRE machine state with absolute times
  /// replaced by offsets from `now_` and sequence numbers by their relative
  /// order. Two states with equal strings evolve identically (the queue
  /// comparator only reads tick and relative seq order), so a repeat proves
  /// a cycle — the detection is exact, never a heuristic.
  std::string canonical_state() const {
    std::string out;
    out.reserve(256);
    out += "sel:";
    for (const auto& [node, path] : selections_) {
      out += node;
      out += '=';
      out += spp::path_name(path);
      out += ';';
    }
    out += "|rib:";
    for (const auto& [node, rib] : rib_in_) {
      for (const auto& [peer, path] : rib) {
        out += node;
        out += '<';
        out += peer;
        out += '=';
        out += spp::path_name(path);
        out += ';';
      }
    }
    out += "|down:";
    for (const auto& link : down_) {
      out += link.first;
      out += '~';
      out += link.second;
      out += ';';
    }
    if (options_.mrai_ticks > 0) {
      out += "|mrai:";
      for (const auto& [node, timer] : timers_) {
        if (timer.ready_tick > now_ || timer.dirty || timer.pending) {
          out += node;
          out += '=';
          out += std::to_string(
              timer.ready_tick > now_ ? timer.ready_tick - now_ : 0);
          out += timer.dirty ? 'd' : '-';
          out += timer.pending ? 'p' : '-';
          out += ';';
        }
      }
    }
    out += "|q:";
    std::vector<Event> in_flight = sorted_queue();
    for (const Event& event : in_flight) {
      out += std::to_string(event.tick - now_);
      out += ',';
      out += kind_name(event.kind);
      out += ',';
      out += event.a;
      out += '>';
      out += event.b;
      out += ',';
      out += event.payload.has_value() ? spp::path_name(*event.payload)
                                       : std::string("w");
      const auto it = epoch_.find(link_of(event.a, event.b));
      const bool fresh =
          event.kind != Event::Kind::deliver ||
          (it != epoch_.end() && it->second == event.epoch);
      out += fresh ? 'f' : 's';
      out += ';';
    }
    return out;
  }

  std::vector<Event> sorted_queue() const {
    std::vector<Event> events;
    events.reserve(queue_.size());
    auto copy = queue_;
    while (!copy.empty()) {
      events.push_back(copy.top());
      copy.pop();
    }
    return events;
  }

  // -- trace recording -------------------------------------------------------

  void trace_line(const Event& event, const char* note) {
    if (!options_.record_trace) return;
    std::string line = "t=" + std::to_string(event.tick);
    line += ' ';
    line += kind_name(event.kind);
    line += ' ';
    line += event.a;
    if (!event.b.empty()) {
      line += '>';
      line += event.b;
    }
    if (event.kind == Event::Kind::deliver) {
      line += ' ';
      line += event.payload.has_value() ? spp::path_name(*event.payload)
                                        : std::string("withdraw");
    }
    line += ' ';
    line += note;
    trace_.push_back(std::move(line));
  }

  // -- state -----------------------------------------------------------------

  struct NodeTimer {
    std::uint64_t ready_tick = 0;  // earliest tick the node may flush again
    bool pending = false;          // a timer event is in the queue
    bool dirty = false;            // changes batched since the last flush
  };

  const SppInstance& instance_;
  const SimOptions& options_;

  std::map<std::string, std::vector<std::string>> adjacency_;
  std::map<Link, std::uint64_t> delay_;
  std::map<Link, std::uint64_t> epoch_;
  std::set<Link> down_;

  Assignment selections_;
  std::map<std::string, std::map<std::string, Path>> rib_in_;
  std::map<std::string, NodeTimer> timers_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t now_ = 0;
  std::uint64_t scheduled_remaining_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t route_changes_ = 0;
  std::uint64_t last_change_tick_ = 0;
  std::vector<std::string> trace_;
};

}  // namespace

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names{"steady", "staged", "link-flap",
                                              "session-reset"};
  return names;
}

bool is_scenario_name(const std::string& name) {
  for (const std::string& known : scenario_names()) {
    if (known == name) return true;
  }
  return false;
}

SimResult simulate(const SppInstance& instance, const SimOptions& options) {
  if (!is_scenario_name(options.scenario)) {
    throw InvalidArgument("unknown simulation scenario '" + options.scenario +
                          "' (expected one of: steady, staged, link-flap, "
                          "session-reset)");
  }
  if (options.max_steps == 0) {
    throw InvalidArgument("simulation max_steps must be >= 1");
  }

  obs::Span span("sim.run");
  span.arg("instance", instance.name());
  span.arg("scenario", options.scenario);

  Machine machine(instance, options);
  SimResult result = machine.run();

  // Per-run registry flush (boundary counting, per obs/metrics.h): one
  // relaxed add per instrument per run, never per event.
  static obs::Counter& runs = obs::registry().counter("sim.runs");
  static obs::Counter& messages = obs::registry().counter("sim.messages");
  static obs::Counter& converged = obs::registry().counter("sim.converged");
  static obs::Counter& oscillations =
      obs::registry().counter("sim.oscillations");
  static obs::Histogram& steps_histogram =
      obs::registry().histogram("sim.convergence_steps");
  runs.add(1);
  messages.add(result.messages);
  if (result.converged) {
    converged.add(1);
    steps_histogram.record(result.steps);
  }
  if (result.oscillating) oscillations.add(1);

  span.arg("steps", result.steps);
  span.arg("messages", result.messages);
  span.arg("converged", result.converged);
  obs::record_event(obs::RecorderEventKind::mark,
                    "sim:" + options.scenario + ":" + instance.name(),
                    result.steps, result.messages);
  return result;
}

}  // namespace fsr::sim
