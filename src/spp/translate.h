// SPP -> routing algebra translation (paper Section III-B).
//
// Every directed link uv receives a unique label l(u-v) whose complement
// is l(v-u); every permitted path p a unique signature r(p). Per-node
// rankings become chains of strict preference constraints, and the
// concatenation operator connects exactly the permitted paths:
//
//     r(uvp) = l(u-v) (+) r(vp)   when both paths are permitted,
//
// everything else yielding phi. The resulting FiniteAlgebra serves both
// the safety analyzer (the Figure-3 instance yields the paper's eighteen
// constraints: nine rankings + nine strict-monotonicity entries) and the
// generated distributed implementation (extension by the table replays
// exactly the SPP dynamics).
#ifndef FSR_SPP_TRANSLATE_H
#define FSR_SPP_TRANSLATE_H

#include <string>

#include "algebra/algebra.h"
#include "spp/spp.h"

namespace fsr::spp {

/// Label constant for the directed link u -> v.
std::string spp_label(const std::string& u, const std::string& v);

/// Signature constant for a permitted path.
std::string spp_signature(const Path& path);

/// Builds the algebra of Section III-B for `instance`.
/// Throws fsr::InvalidArgument if the instance has no permitted paths.
algebra::AlgebraPtr algebra_from_spp(const SppInstance& instance);

}  // namespace fsr::spp

#endif  // FSR_SPP_TRANSLATE_H
