#include "spp/gadgets.h"

#include <cstdlib>
#include <utility>

#include "util/error.h"

namespace fsr::spp {

SppInstance good_gadget() {
  SppInstance instance("good-gadget");
  instance.add_edge("1", "0");
  instance.add_edge("2", "0");
  instance.add_edge("3", "0");
  instance.add_edge("1", "3");
  instance.add_edge("1", "2");
  instance.add_permitted_path({"1", "3", "0"});
  instance.add_permitted_path({"1", "0"});
  instance.add_permitted_path({"2", "1", "0"});
  instance.add_permitted_path({"2", "0"});
  instance.add_permitted_path({"3", "0"});
  instance.add_permitted_path({"3", "1", "0"});
  return instance;
}

SppInstance bad_gadget() {
  SppInstance instance("bad-gadget");
  instance.add_edge("1", "0");
  instance.add_edge("2", "0");
  instance.add_edge("3", "0");
  instance.add_edge("1", "2");
  instance.add_edge("2", "3");
  instance.add_edge("3", "1");
  instance.add_permitted_path({"1", "2", "0"});
  instance.add_permitted_path({"1", "0"});
  instance.add_permitted_path({"2", "3", "0"});
  instance.add_permitted_path({"2", "0"});
  instance.add_permitted_path({"3", "1", "0"});
  instance.add_permitted_path({"3", "0"});
  return instance;
}

SppInstance disagree_gadget() {
  SppInstance instance("disagree");
  instance.add_edge("1", "0");
  instance.add_edge("2", "0");
  instance.add_edge("1", "2");
  instance.add_permitted_path({"1", "2", "0"});
  instance.add_permitted_path({"1", "0"});
  instance.add_permitted_path({"2", "1", "0"});
  instance.add_permitted_path({"2", "0"});
  return instance;
}

namespace {

/// Shared topology of the Figure-3 instance: reflectors a, b, c in a
/// triangle; egress nodes d (client of a), e (of b), f (of c) each holding
/// an external route to the destination.
SppInstance figure3_topology(const std::string& name) {
  SppInstance instance(name);
  // iBGP sessions among reflectors and to clients.
  instance.add_edge("a", "b");
  instance.add_edge("b", "c");
  instance.add_edge("a", "c");
  instance.add_edge("a", "d");
  instance.add_edge("b", "e");
  instance.add_edge("c", "f");
  // External routes r1, r2, r3 as one-hop egress links.
  instance.add_edge("d", "0");
  instance.add_edge("e", "0");
  instance.add_edge("f", "0");
  return instance;
}

}  // namespace

SppInstance ibgp_figure3_gadget() {
  SppInstance instance = figure3_topology("ibgp-figure3");
  // Reflectors: each prefers the NEXT reflector's client egress over its
  // own client's — the oscillation-inducing preferences of the figure.
  instance.add_permitted_path({"a", "b", "e", "0"});  // aber2
  instance.add_permitted_path({"a", "d", "0"});       // adr1
  instance.add_permitted_path({"b", "c", "f", "0"});  // bcfr3
  instance.add_permitted_path({"b", "e", "0"});       // ber2
  instance.add_permitted_path({"c", "a", "d", "0"});  // cadr1
  instance.add_permitted_path({"c", "f", "0"});       // cfr3
  // Egress nodes: external route first, then routes via the reflectors.
  instance.add_permitted_path({"d", "0"});                 // r1
  instance.add_permitted_path({"d", "a", "b", "e", "0"});  // daber2
  instance.add_permitted_path({"d", "a", "c", "f", "0"});  // dacfr3
  instance.add_permitted_path({"e", "0"});                 // r2
  instance.add_permitted_path({"e", "b", "a", "d", "0"});  // ebadr1
  instance.add_permitted_path({"e", "b", "c", "f", "0"});  // ebcfr3
  instance.add_permitted_path({"f", "0"});                 // r3
  instance.add_permitted_path({"f", "c", "b", "e", "0"});  // fcber2
  instance.add_permitted_path({"f", "c", "a", "d", "0"});  // fcadr1
  return instance;
}

SppInstance ibgp_figure3_fixed() {
  SppInstance instance = figure3_topology("ibgp-figure3-fixed");
  // Repair: every reflector prefers its own client's egress route.
  instance.add_permitted_path({"a", "d", "0"});
  instance.add_permitted_path({"a", "b", "e", "0"});
  instance.add_permitted_path({"b", "e", "0"});
  instance.add_permitted_path({"b", "c", "f", "0"});
  instance.add_permitted_path({"c", "f", "0"});
  instance.add_permitted_path({"c", "a", "d", "0"});
  instance.add_permitted_path({"d", "0"});
  instance.add_permitted_path({"d", "a", "b", "e", "0"});
  instance.add_permitted_path({"d", "a", "c", "f", "0"});
  instance.add_permitted_path({"e", "0"});
  instance.add_permitted_path({"e", "b", "a", "d", "0"});
  instance.add_permitted_path({"e", "b", "c", "f", "0"});
  instance.add_permitted_path({"f", "0"});
  instance.add_permitted_path({"f", "c", "b", "e", "0"});
  instance.add_permitted_path({"f", "c", "a", "d", "0"});
  return instance;
}

namespace {

void append_good_gadgets(SppInstance& instance, std::int32_t first,
                         std::int32_t count) {
  for (std::int32_t k = first; k < first + count; ++k) {
    const std::string suffix = "g" + std::to_string(k);
    const std::string n1 = "1" + suffix;
    const std::string n2 = "2" + suffix;
    const std::string n3 = "3" + suffix;
    instance.add_edge(n1, "0");
    instance.add_edge(n2, "0");
    instance.add_edge(n3, "0");
    instance.add_edge(n1, n3);
    instance.add_edge(n1, n2);
    instance.add_permitted_path({n1, n3, "0"});
    instance.add_permitted_path({n1, "0"});
    instance.add_permitted_path({n2, n1, "0"});
    instance.add_permitted_path({n2, "0"});
    instance.add_permitted_path({n3, "0"});
    instance.add_permitted_path({n3, n1, "0"});
  }
}

}  // namespace

SppInstance good_gadget_chain(std::int32_t count) {
  if (count < 1) throw InvalidArgument("good_gadget_chain needs count >= 1");
  SppInstance instance("good-gadget-chain");
  append_good_gadgets(instance, 0, count);
  return instance;
}

SppInstance bad_gadget_chain(std::int32_t count) {
  if (count < 1) throw InvalidArgument("bad_gadget_chain needs count >= 1");
  SppInstance instance("bad-gadget-chain");
  // The BAD gadget proper (nodes b1/b2/b3 to keep the chain's namespace).
  instance.add_edge("b1", "0");
  instance.add_edge("b2", "0");
  instance.add_edge("b3", "0");
  instance.add_edge("b1", "b2");
  instance.add_edge("b2", "b3");
  instance.add_edge("b3", "b1");
  instance.add_permitted_path({"b1", "b2", "0"});
  instance.add_permitted_path({"b1", "0"});
  instance.add_permitted_path({"b2", "b3", "0"});
  instance.add_permitted_path({"b2", "0"});
  instance.add_permitted_path({"b3", "b1", "0"});
  instance.add_permitted_path({"b3", "0"});
  append_good_gadgets(instance, 0, count - 1);
  return instance;
}

const std::vector<std::string>& gadget_names() {
  static const std::vector<std::string> names = {
      "good",          "bad",
      "disagree",      "ibgp-figure3",
      "ibgp-figure3-fixed", "good-chain-N",
      "bad-chain-N"};
  return names;
}

SppInstance gadget_by_name(const std::string& name) {
  if (name == "good") return good_gadget();
  if (name == "bad") return bad_gadget();
  if (name == "disagree") return disagree_gadget();
  if (name == "ibgp-figure3") return ibgp_figure3_gadget();
  if (name == "ibgp-figure3-fixed") return ibgp_figure3_fixed();
  using ChainBuilder = SppInstance (*)(std::int32_t);
  constexpr std::pair<const char*, ChainBuilder> chains[] = {
      {"good-chain-", good_gadget_chain}, {"bad-chain-", bad_gadget_chain}};
  for (const auto& [prefix, build] : chains) {
    const std::string prefix_text(prefix);
    if (name.rfind(prefix_text, 0) == 0) {
      const int count = std::atoi(name.c_str() + prefix_text.size());
      if (count >= 1) return build(count);
    }
  }
  throw InvalidArgument("unknown gadget '" + name + "' (try --list-gadgets)");
}

}  // namespace fsr::spp
