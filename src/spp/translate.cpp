#include "spp/translate.h"

#include "algebra/finite_algebra.h"
#include "util/error.h"

namespace fsr::spp {

std::string spp_label(const std::string& u, const std::string& v) {
  return "l(" + u + "-" + v + ")";
}

std::string spp_signature(const Path& path) {
  return "r(" + path_name(path) + ")";
}

algebra::AlgebraPtr algebra_from_spp(const SppInstance& instance) {
  if (instance.permitted_path_count() == 0) {
    throw InvalidArgument("SPP instance '" + instance.name() +
                          "' has no permitted paths");
  }
  algebra::FiniteAlgebra::Builder builder("spp:" + instance.name());

  // Labels: one per direction of every declared link.
  for (const auto& [u, v] : instance.edges()) {
    builder.add_label(spp_label(u, v), spp_label(v, u));
  }

  // Signatures: one per permitted path.
  for (const std::string& node : instance.nodes()) {
    for (const Path& path : instance.permitted(node)) {
      builder.add_signature(spp_signature(path));
    }
  }

  for (const std::string& node : instance.nodes()) {
    const auto& ranked = instance.permitted(node);

    // Rankings: r1 < r2 < ... < rn as pairwise strict preferences.
    for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
      builder.prefer(spp_signature(ranked[i]),
                     algebra::PrefRel::strictly_better,
                     spp_signature(ranked[i + 1]),
                     "rank at " + node + ": " + path_name(ranked[i]) + " < " +
                         path_name(ranked[i + 1]));
    }

    for (const Path& path : ranked) {
      if (path.size() == 2) {
        // One-hop permitted path: a member of the origination set; its
        // signature attaches to the link's label directly.
        builder.set_origination(spp_label(path[0], path[1]),
                                spp_signature(path));
        continue;
      }
      // Multi-hop: connect to the sub-path when (and only when) the
      // sub-path is itself permitted at the next hop. Paths whose suffix
      // is not permitted stay unconnected — they are constrained only by
      // their node's ranking, exactly as in the paper's Figure-3 walkthrough.
      const Path suffix(path.begin() + 1, path.end());
      if (instance.rank_of(suffix).has_value()) {
        builder.set_generation(spp_label(path[0], path[1]),
                               spp_signature(suffix), spp_signature(path));
      }
    }
  }
  return builder.build();
}

}  // namespace fsr::spp
