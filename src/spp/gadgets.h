// The classic SPP gadget library (Griffin-Shepherd-Wilfong) plus the
// paper's Figure-3 iBGP configuration instance.
//
// Conventions: the destination is node "0"; external routes (r1, r2, r3 in
// the figure) are modelled as one-hop paths to "0".
#ifndef FSR_SPP_GADGETS_H
#define FSR_SPP_GADGETS_H

#include <cstdint>

#include "spp/spp.h"

namespace fsr::spp {

/// GOOD GADGET: three nodes around the destination; node 3 anchors on its
/// direct route, so the system has a unique stable assignment and every
/// SPVP execution converges.
///   1: (1 3 0) > (1 0)
///   2: (2 1 0) > (2 0)
///   3: (3 0)   > (3 1 0)
SppInstance good_gadget();

/// BAD GADGET: the canonical divergent instance — each node prefers the
/// route through its clockwise neighbour. No stable assignment exists and
/// SPVP oscillates forever.
///   1: (1 2 0) > (1 0)
///   2: (2 3 0) > (2 0)
///   3: (3 1 0) > (3 0)
SppInstance bad_gadget();

/// DISAGREE: two nodes that each prefer routing through the other. Two
/// stable assignments exist; executions may flap between them transiently
/// but always converge to one.
///   1: (1 2 0) > (1 0)
///   2: (2 1 0) > (2 0)
SppInstance disagree_gadget();

/// The iBGP route-reflection instance of the paper's Figure 3 (after
/// Flavel-Roughan): route reflectors a, b, c and egress nodes d, e, f with
/// external routes r1, r2, r3. Each reflector prefers the other reflector's
/// client egress over its own, producing an oscillation; the instance is
/// unsafe and its unsat core isolates the reflector constraints.
SppInstance ibgp_figure3_gadget();

/// A repaired variant of Figure 3 in which every reflector prefers its own
/// client's egress route; safe, with a unique stable assignment. Used as
/// the "NoGadget" configuration of Section VI-B.
SppInstance ibgp_figure3_fixed();

/// A chain of `count` independent GOOD gadgets sharing one destination
/// (gadget k uses nodes 1k/2k/3k). Used by the Section VI-C experiment
/// that scales the number of gadgets.
SppInstance good_gadget_chain(std::int32_t count);

/// The BAD-gadget family: one BAD gadget plus `count - 1` independent GOOD
/// gadgets sharing the destination. The instance grows linearly while the
/// dispute cycle (and hence the minimal unsat core and the minimal repair)
/// stays the BAD gadget's six constraints — the shape the repair engine's
/// incremental re-checks are benchmarked on.
SppInstance bad_gadget_chain(std::int32_t count);

/// The names gadget_by_name accepts (display order). The two chain
/// families appear by their documented spelling ("good-chain-N",
/// "bad-chain-N"); any positive N is valid.
const std::vector<std::string>& gadget_names();

/// Builds a library gadget from its CLI/wire name: good, bad, disagree,
/// ibgp-figure3, ibgp-figure3-fixed, good-chain-N, bad-chain-N. Throws
/// fsr::InvalidArgument for anything else — the one lookup shared by
/// fsr_repair, fsr_serve, and the scenario sources.
SppInstance gadget_by_name(const std::string& name);

}  // namespace fsr::spp

#endif  // FSR_SPP_GADGETS_H
