#include "spp/spp.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace fsr::spp {

const std::vector<Path> SppInstance::k_no_paths{};

std::string path_name(const Path& path) {
  return util::join(path, "-");
}

const char* to_string(EnumerationStop stop) noexcept {
  switch (stop) {
    case EnumerationStop::completed:
      return "completed";
    case EnumerationStop::state_budget:
      return "state-budget";
    case EnumerationStop::solution_budget:
      return "solution-budget";
  }
  return "state-budget";
}

SppInstance::SppInstance(std::string name, std::string destination)
    : name_(std::move(name)), destination_(std::move(destination)) {
  if (name_.empty() || destination_.empty()) {
    throw InvalidArgument("SPP instance and destination names are required");
  }
  node_set_.insert(destination_);
}

void SppInstance::add_edge(const std::string& u, const std::string& v) {
  if (u == v) throw InvalidArgument("self-loop edge at '" + u + "'");
  node_set_.insert(u);
  node_set_.insert(v);
  const auto normalised = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  if (edge_set_.insert(normalised).second) {
    edges_.push_back(normalised);
  }
}

bool SppInstance::has_edge(const std::string& u, const std::string& v) const {
  const auto key = u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  return edge_set_.contains(key);
}

void SppInstance::add_permitted_path(const Path& path) {
  if (path.size() < 2) {
    throw InvalidArgument("permitted path must have at least two nodes");
  }
  if (path.back() != destination_) {
    throw InvalidArgument("permitted path " + path_name(path) +
                          " must end at destination '" + destination_ + "'");
  }
  if (path.front() == destination_) {
    throw InvalidArgument("permitted path may not start at the destination");
  }
  std::set<std::string> seen;
  for (const std::string& node : path) {
    if (!seen.insert(node).second) {
      throw InvalidArgument("permitted path " + path_name(path) +
                            " is not simple");
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!has_edge(path[i], path[i + 1])) {
      throw InvalidArgument("permitted path " + path_name(path) +
                            " uses undeclared edge " + path[i] + "-" +
                            path[i + 1]);
    }
  }
  permitted_[path.front()].push_back(path);
}

std::vector<std::string> SppInstance::nodes() const {
  std::vector<std::string> out;
  for (const std::string& node : node_set_) {
    if (node != destination_) out.push_back(node);
  }
  return out;
}

const std::vector<Path>& SppInstance::permitted(const std::string& node) const {
  const auto it = permitted_.find(node);
  return it == permitted_.end() ? k_no_paths : it->second;
}

std::optional<std::size_t> SppInstance::rank_of(const Path& path) const {
  if (path.empty()) return std::nullopt;
  const auto& ranked = permitted(path.front());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == path) return i;
  }
  return std::nullopt;
}

std::size_t SppInstance::permitted_path_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [node, paths] : permitted_) {
    (void)node;
    n += paths.size();
  }
  return n;
}

std::optional<Path> best_consistent_choice(const SppInstance& instance,
                                           const std::string& node,
                                           const Assignment& chosen) {
  for (const Path& candidate : instance.permitted(node)) {
    if (candidate.size() == 2) return candidate;  // direct to destination
    const std::string& next_hop = candidate[1];
    const auto it = chosen.find(next_hop);
    if (it == chosen.end()) continue;
    const Path& next_path = it->second;
    if (candidate.size() != next_path.size() + 1) continue;
    if (std::equal(candidate.begin() + 1, candidate.end(),
                   next_path.begin())) {
      return candidate;
    }
  }
  return std::nullopt;
}

bool is_stable_assignment(const SppInstance& instance,
                          const Assignment& assignment) {
  for (const std::string& node : instance.nodes()) {
    const auto best = best_consistent_choice(instance, node, assignment);
    const auto it = assignment.find(node);
    const bool has = it != assignment.end();
    if (best.has_value() != has ||
        (best.has_value() && has && *best != it->second)) {
      return false;
    }
  }
  return true;
}

BudgetedEnumeration enumerate_stable_assignments_budgeted(
    const SppInstance& instance, std::uint64_t max_states,
    std::size_t max_solutions) {
  const std::vector<std::string> nodes = instance.nodes();
  BudgetedEnumeration result;
  std::vector<std::size_t> choice(nodes.size(), 0);  // index; size() = none

  const auto current_assignment = [&]() {
    Assignment assignment;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const auto& paths = instance.permitted(nodes[i]);
      if (choice[i] < paths.size()) {
        assignment[nodes[i]] = paths[choice[i]];
      }
    }
    return assignment;
  };

  while (result.states_scanned < max_states) {
    ++result.states_scanned;
    Assignment assignment = current_assignment();
    if (is_stable_assignment(instance, assignment)) {
      result.assignments.push_back(std::move(assignment));
    }

    // Advance the mixed-radix counter.
    std::size_t i = 0;
    for (; i < nodes.size(); ++i) {
      if (choice[i] < instance.permitted(nodes[i]).size()) {
        ++choice[i];
        break;
      }
      choice[i] = 0;
    }
    if (i == nodes.size()) {
      result.complete = true;
      result.stopped_by = EnumerationStop::completed;
      return result;
    }
    if (result.assignments.size() >= max_solutions) {
      result.stopped_by = EnumerationStop::solution_budget;
      return result;
    }
  }
  result.stopped_by = EnumerationStop::state_budget;
  return result;
}

std::vector<Assignment> enumerate_stable_assignments(
    const SppInstance& instance, std::uint64_t max_states) {
  // Search space: each node picks one permitted path or none.
  std::uint64_t states = 1;
  for (const std::string& node : instance.nodes()) {
    const std::uint64_t options = instance.permitted(node).size() + 1;
    if (states > max_states / options) {
      throw InvalidArgument(
          "SPP instance '" + instance.name() +
          "' is too large for exhaustive stable-state enumeration");
    }
    states *= options;
  }
  BudgetedEnumeration scan =
      enumerate_stable_assignments_budgeted(instance, states);
  return std::move(scan.assignments);
}

SpvpResult simulate_spvp(const SppInstance& instance, util::Rng& rng,
                         std::uint64_t max_activations) {
  const std::vector<std::string> nodes = instance.nodes();
  SpvpResult result;
  if (nodes.empty()) {
    result.converged = true;
    return result;
  }

  Assignment chosen;
  // Quiescence detection: converged once `nodes.size()` consecutive
  // activations (a full randomized sweep with certainty margin) caused no
  // change AND a deterministic sweep confirms a fixed point.
  std::uint64_t since_change = 0;
  const auto n = static_cast<std::int64_t>(nodes.size());

  const auto apply_activation = [&](const std::string& node) {
    const auto best = best_consistent_choice(instance, node, chosen);
    const auto it = chosen.find(node);
    const bool has = it != chosen.end();
    if (best.has_value() != has ||
        (best.has_value() && has && *best != it->second)) {
      if (best.has_value()) {
        chosen[node] = *best;
      } else {
        chosen.erase(node);
      }
      return true;
    }
    return false;
  };

  const auto is_fixed_point = [&]() {
    return is_stable_assignment(instance, chosen);
  };

  while (result.activations < max_activations) {
    const auto pick = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    ++result.activations;
    if (apply_activation(nodes[pick])) {
      ++result.route_changes;
      since_change = 0;
    } else {
      ++since_change;
    }
    if (since_change >= nodes.size() * 4 && is_fixed_point()) {
      result.converged = true;
      result.final_assignment = chosen;
      return result;
    }
  }
  return result;
}

}  // namespace fsr::spp
