// The Stable Paths Problem (SPP), Griffin-Shepherd-Wilfong.
//
// An SPP instance is a graph with a single destination, where every node
// carries a ranked list of "permitted paths" to that destination (most
// preferred first). SPP is the paper's representation for fully concrete
// policy configurations — eBGP gadgets, extracted iBGP configurations —
// and Section III-B translates instances into routing algebra for the
// safety analyzer.
//
// External routes (the r1/r2/r3 of the paper's Figure 3) are modelled as
// one-hop paths to the shared destination node, so an instance is always a
// plain single-destination SPP.
//
// This module also provides ground truth for the toolkit's verdicts:
//   * enumerate_stable_assignments — exhaustive search for stable path
//     assignments (GOOD gadget: exactly 1; DISAGREE: 2; BAD: none);
//   * simulate_spvp — a randomized asynchronous Simple Path Vector Protocol
//     run, used to observe convergence/oscillation independently of the
//     NDlog emulation stack.
#ifndef FSR_SPP_SPP_H
#define FSR_SPP_SPP_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fsr::spp {

/// A path is the node sequence from its source to the destination,
/// inclusive: {"a", "b", "e", "0"}.
using Path = std::vector<std::string>;

/// Renders "a b e 0" as "abe0" style compact text (nodes joined by '-')
/// for diagnostics and signature naming.
std::string path_name(const Path& path);

class SppInstance {
 public:
  /// `destination` is created implicitly; nodes are added on first use.
  explicit SppInstance(std::string name, std::string destination = "0");

  const std::string& name() const noexcept { return name_; }
  const std::string& destination() const noexcept { return destination_; }

  /// Declares an undirected link.
  void add_edge(const std::string& u, const std::string& v);

  /// Appends `path` to the permitted list of its source node (ranked:
  /// earlier calls are more preferred). Validates that the path starts at
  /// a non-destination node, ends at the destination, is simple, and uses
  /// declared edges. Throws fsr::InvalidArgument otherwise.
  void add_permitted_path(const Path& path);

  /// All non-destination nodes, in deterministic (sorted) order.
  std::vector<std::string> nodes() const;

  bool has_edge(const std::string& u, const std::string& v) const;
  const std::vector<std::pair<std::string, std::string>>& edges()
      const noexcept {
    return edges_;
  }

  /// Ranked permitted paths of `node` (may be empty).
  const std::vector<Path>& permitted(const std::string& node) const;

  /// Rank of `path` at its source (0 = most preferred), or nullopt if the
  /// path is not permitted there.
  std::optional<std::size_t> rank_of(const Path& path) const;

  std::size_t permitted_path_count() const noexcept;

 private:
  std::string name_;
  std::string destination_;
  std::set<std::string> node_set_;
  std::set<std::pair<std::string, std::string>> edge_set_;  // normalised
  std::vector<std::pair<std::string, std::string>> edges_;
  std::map<std::string, std::vector<Path>> permitted_;
  static const std::vector<Path> k_no_paths;
};

/// A path assignment: node -> chosen permitted path (nodes routing to
/// nothing are absent).
using Assignment = std::map<std::string, Path>;

/// The path `node` would select under assignment `chosen`: its highest
/// ranked permitted path whose one-step suffix is the current selection of
/// the next hop (or a direct path to the destination). This is the SPVP
/// selection rule — shared by the stability predicate, simulate_spvp, and
/// the event-driven simulator in src/sim.
std::optional<Path> best_consistent_choice(const SppInstance& instance,
                                           const std::string& node,
                                           const Assignment& chosen);

/// True when `assignment` is stable: every node's entry equals its best
/// consistent permitted path given the others' choices (and nodes without
/// an entry have no consistent permitted path at all).
bool is_stable_assignment(const SppInstance& instance,
                          const Assignment& assignment);

/// Exhaustively enumerates all stable assignments of `instance`. A stable
/// assignment picks, for every node, the highest-ranked permitted path
/// consistent with the neighbours' choices (or no path when none is
/// available). Exponential in the instance size; intended for gadgets.
/// Throws fsr::InvalidArgument when the search space exceeds `max_states`.
std::vector<Assignment> enumerate_stable_assignments(
    const SppInstance& instance, std::uint64_t max_states = 1u << 22);

/// Why a budgeted brute-force scan ended: it covered the whole state space
/// (`completed`), ran out of its state budget (`state_budget`), or found
/// `max_solutions` stable assignments first (`solution_budget`).
enum class EnumerationStop { completed, state_budget, solution_budget };

const char* to_string(EnumerationStop stop) noexcept;

/// Outcome of a budgeted brute-force scan (enumerate_stable_assignments
/// without the up-front throw): `complete` is true when the whole state
/// space was covered, so `assignments` is the exact answer; otherwise
/// `stopped_by` names the exhausted budget and `assignments` is only a
/// partial floor.
struct BudgetedEnumeration {
  std::vector<Assignment> assignments;
  bool complete = false;
  std::uint64_t states_scanned = 0;
  EnumerationStop stopped_by = EnumerationStop::state_budget;
};

/// Scans up to `max_states` candidate states for stable assignments,
/// stopping early once `max_solutions` have been found. Never throws on
/// large instances — the budget simply runs out (`complete` false). The
/// ground-truth engine's enumerate backend.
BudgetedEnumeration enumerate_stable_assignments_budgeted(
    const SppInstance& instance, std::uint64_t max_states,
    std::size_t max_solutions = static_cast<std::size_t>(-1));

/// Result of an asynchronous SPVP simulation.
struct SpvpResult {
  bool converged = false;
  /// Number of node activations performed (== max_activations when the
  /// run was cut off without quiescing).
  std::uint64_t activations = 0;
  /// Number of times some node changed its selected path.
  std::uint64_t route_changes = 0;
  Assignment final_assignment;  // meaningful when converged
};

/// Runs SPVP with uniformly random node activations: each activation makes
/// one node re-select its best consistent permitted path given current
/// neighbour selections. Converged means a full sweep changes nothing.
SpvpResult simulate_spvp(const SppInstance& instance, util::Rng& rng,
                         std::uint64_t max_activations = 100000);

}  // namespace fsr::spp

#endif  // FSR_SPP_SPP_H
