// Dispute-cycle detection for SPP instances.
//
// The paper observes (Section VI-B) that the minimal unsat core of an
// unsafe instance "forms a dispute wheel". This module makes that notion
// directly computable: the ranking constraints (p better than p' at the
// same node) and monotonicity constraints (a permitted path is less
// preferred than its permitted suffix) form a strict-preference digraph
// over path signatures; the instance admits a strictly monotone ranking
// iff that digraph is acyclic. A cycle is a combinatorial witness of the
// dispute — the same evidence the solver's unsat core provides, derived
// graph-theoretically.
//
// (This is the SPP specialisation: every constraint is a strict "<", so
// satisfiability over integers is exactly digraph acyclicity. The SMT
// path remains the general tool — guidelines also carry equalities, weak
// preferences and quantified templates.)
#ifndef FSR_SPP_DISPUTE_WHEEL_H
#define FSR_SPP_DISPUTE_WHEEL_H

#include <optional>
#include <string>
#include <vector>

#include "spp/spp.h"

namespace fsr::spp {

/// One edge of a dispute cycle, with human-readable provenance.
struct DisputeEdge {
  std::string preferred;   // signature that must rank strictly better
  std::string dispreferred;
  std::string provenance;  // "rank at u: ..." or "suffix of ..."
};

/// Returns a strict-preference cycle if one exists (the instance cannot
/// be strictly monotone), or std::nullopt if the constraint digraph is
/// acyclic (a strictly monotone ranking exists).
std::optional<std::vector<DisputeEdge>> find_dispute_cycle(
    const SppInstance& instance);

}  // namespace fsr::spp

#endif  // FSR_SPP_DISPUTE_WHEEL_H
