#include "spp/dispute_wheel.h"

#include <map>

#include "spp/translate.h"

namespace fsr::spp {
namespace {

struct Graph {
  // adjacency: preferred signature -> (dispreferred signature, provenance)
  std::map<std::string, std::vector<std::pair<std::string, std::string>>> out;
};

/// Builds the strict-preference digraph: an edge a -> b means "a must
/// rank strictly better than b".
Graph build_graph(const SppInstance& instance) {
  Graph graph;
  for (const std::string& node : instance.nodes()) {
    const auto& ranked = instance.permitted(node);
    for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
      graph.out[spp_signature(ranked[i])].emplace_back(
          spp_signature(ranked[i + 1]),
          "rank at " + node + ": " + path_name(ranked[i]) + " < " +
              path_name(ranked[i + 1]));
    }
    for (const Path& path : ranked) {
      if (path.size() == 2) continue;
      const Path suffix(path.begin() + 1, path.end());
      if (instance.rank_of(suffix).has_value()) {
        // Strict monotonicity: the suffix must rank better than the path.
        graph.out[spp_signature(suffix)].emplace_back(
            spp_signature(path),
            "monotonicity: " + path_name(suffix) + " < " + path_name(path));
      }
    }
  }
  return graph;
}

}  // namespace

std::optional<std::vector<DisputeEdge>> find_dispute_cycle(
    const SppInstance& instance) {
  const Graph graph = build_graph(instance);

  // Iterative DFS with colouring; on finding a back edge, unwind the
  // explicit stack to reconstruct the cycle with provenance.
  enum class Colour { white, grey, black };
  std::map<std::string, Colour> colour;

  struct Frame {
    std::string node;
    std::size_t next_edge = 0;
  };

  for (const auto& [start, edges] : graph.out) {
    (void)edges;
    if (colour[start] != Colour::white) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{start, 0});
    colour[start] = Colour::grey;

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto adjacency = graph.out.find(frame.node);
      const std::size_t degree =
          adjacency == graph.out.end() ? 0 : adjacency->second.size();
      if (frame.next_edge >= degree) {
        colour[frame.node] = Colour::black;
        stack.pop_back();
        continue;
      }
      const auto& [target, provenance] =
          adjacency->second[frame.next_edge++];
      if (colour[target] == Colour::grey) {
        // Back edge: the cycle runs from `target` up the stack to
        // frame.node, then closes via this edge.
        std::vector<DisputeEdge> cycle;
        std::size_t cycle_start = 0;
        for (std::size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].node == target) {
            cycle_start = i;
            break;
          }
        }
        for (std::size_t i = cycle_start; i + 1 < stack.size(); ++i) {
          // The edge taken out of stack[i] was next_edge - 1.
          const auto& taken =
              graph.out.at(stack[i].node)[stack[i].next_edge - 1];
          cycle.push_back(
              DisputeEdge{stack[i].node, taken.first, taken.second});
        }
        cycle.push_back(DisputeEdge{stack.back().node, target, provenance});
        return cycle;
      }
      if (colour[target] == Colour::white) {
        colour[target] = Colour::grey;
        stack.push_back(Frame{target, 0});
      }
    }
  }
  return std::nullopt;
}

}  // namespace fsr::spp
