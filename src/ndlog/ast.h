// Abstract syntax for the NDlog dialect FSR generates (paper Section V).
//
// A program is a set of materialize declarations plus rules:
//
//   materialize(route, keys(1,2,4)).
//   gpvRecv sig(@U,SNew,PNew) :- msg(@U,V,D,S,P),
//       PNew=f_concatPath(U,P), V=f_head(P),
//       SNew=f_concatSig(L,S), label(@U,V,L),
//       f_import(L,S)=true.
//   gpvSelect localOpt(@U,D,a_pref<S>,P) :- route(@U,D,S,P).
//
// Body elements are evaluated left to right: predicate atoms join against
// the stores, `Var=expr` binds the variable on first sight and filters
// afterwards, and comparisons filter. Head arguments may contain one
// aggregate (`a_pref<S>`), turning the rule into a group-by view over the
// remaining bound head arguments.
#ifndef FSR_NDLOG_AST_H
#define FSR_NDLOG_AST_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ndlog/value.h"

namespace fsr::ndlog {

enum class ExprKind { variable, constant, call };

/// An expression: a variable, a literal, or a function application.
struct Expr {
  ExprKind kind = ExprKind::constant;
  std::string name;         // variable or function name
  Value literal;            // when kind == constant
  std::vector<Expr> args;   // when kind == call

  static Expr variable(std::string name) {
    Expr e;
    e.kind = ExprKind::variable;
    e.name = std::move(name);
    return e;
  }
  static Expr constant(Value v) {
    Expr e;
    e.kind = ExprKind::constant;
    e.literal = std::move(v);
    return e;
  }
  static Expr call(std::string name, std::vector<Expr> args) {
    Expr e;
    e.kind = ExprKind::call;
    e.name = std::move(name);
    e.args = std::move(args);
    return e;
  }

  std::string to_string() const;
};

/// One head argument: either a plain expression or an aggregate marker
/// (`a_pref<S>` — aggregate function name + aggregated variable).
struct HeadArg {
  Expr expr;
  bool is_aggregate = false;
  std::string aggregate_function;  // e.g. "a_pref"
  std::string aggregate_variable;  // e.g. "S"

  std::string to_string() const;
};

/// A predicate atom in a rule body (or a fact): relation name, arguments,
/// and the position of the location specifier (the argument marked '@').
struct BodyAtom {
  std::string relation;
  std::vector<Expr> args;
  std::optional<std::size_t> location_index;

  std::string to_string() const;
};

enum class ComparisonOp { eq, ne, lt, le, gt, ge };

/// A non-atom body element: `lhs OP rhs`. With OP == eq and an unbound
/// variable on the left this is an assignment; otherwise a filter.
struct Constraint {
  Expr lhs;
  ComparisonOp op = ComparisonOp::eq;
  Expr rhs;

  std::string to_string() const;
};

/// Body elements preserve source order (joins interleave with bindings).
struct BodyElement {
  enum class Kind { atom, constraint };
  Kind kind = Kind::atom;
  BodyAtom atom;
  Constraint constraint;
};

struct RuleHead {
  std::string relation;
  std::vector<HeadArg> args;
  std::optional<std::size_t> location_index;

  bool has_aggregate() const noexcept;
  std::string to_string() const;
};

struct Rule {
  std::string label;  // e.g. "gpvRecv"; may be empty
  RuleHead head;
  std::vector<BodyElement> body;

  std::string to_string() const;
};

struct MaterializeDecl {
  std::string relation;
  std::vector<std::size_t> key_positions;  // 1-based, as written
};

/// A ground fact stated directly in the program text.
struct Fact {
  std::string relation;
  Tuple tuple;
  std::size_t location_index = 0;
};

struct Program {
  std::vector<MaterializeDecl> materialized;
  std::vector<Rule> rules;
  std::vector<Fact> facts;

  const MaterializeDecl* find_materialize(const std::string& relation) const;
  std::string to_string() const;
};

}  // namespace fsr::ndlog

#endif  // FSR_NDLOG_AST_H
