#include "ndlog/engine.h"

#include <algorithm>

#include "util/error.h"

namespace fsr::ndlog {
namespace {

// Safety valve: a single external delta must locally quiesce well below
// this many internal steps in any sane program.
constexpr std::uint64_t k_max_local_steps = 10'000'000;

/// Index of the aggregate argument in an aggregate head.
std::size_t aggregate_position(const RuleHead& head) {
  for (std::size_t i = 0; i < head.args.size(); ++i) {
    if (head.args[i].is_aggregate) return i;
  }
  throw InvalidArgument("head has no aggregate");
}

}  // namespace

Engine::Engine(std::string node_name, const Program& program,
               const FunctionRegistry* registry)
    : node_name_(std::move(node_name)), program_(program), registry_(registry) {
  if (registry_ == nullptr) {
    throw InvalidArgument("engine requires a function registry");
  }
  for (const MaterializeDecl& decl : program_.materialized) {
    materialized_.insert(decl.relation);
  }

  for (std::size_t r = 0; r < program_.rules.size(); ++r) {
    const Rule& rule = program_.rules[r];
    std::size_t atom_count = 0;
    for (std::size_t e = 0; e < rule.body.size(); ++e) {
      if (rule.body[e].kind == BodyElement::Kind::atom) {
        ++atom_count;
        rule_index_[rule.body[e].atom.relation].emplace_back(r, e);
      }
    }
    if (rule.head.has_aggregate()) {
      // Aggregate views are group-by selections over a single stored
      // relation (plus optional row filters); see the header contract.
      std::size_t agg_args = 0;
      for (const HeadArg& arg : rule.head.args) {
        if (arg.is_aggregate) ++agg_args;
      }
      if (agg_args != 1) {
        throw InvalidArgument("rule '" + rule.label +
                              "': exactly one aggregate per head");
      }
      if (atom_count != 1 ||
          rule.body.front().kind != BodyElement::Kind::atom) {
        throw InvalidArgument(
            "rule '" + rule.label +
            "': aggregate rules need exactly one leading body atom");
      }
      if (!materialized_.contains(rule.body.front().atom.relation)) {
        throw InvalidArgument("rule '" + rule.label +
                              "': aggregate source must be materialized");
      }
      if (!registry_->has_aggregate(
              rule.head.args[aggregate_position(rule.head)]
                  .aggregate_function)) {
        throw InvalidArgument("rule '" + rule.label +
                              "': unknown aggregate function");
      }
      aggregate_state_.emplace(r, AggregateState{});
    }
  }
}

bool Engine::is_materialized(const std::string& relation) const {
  return materialized_.contains(relation);
}

void Engine::insert(const std::string& relation, Tuple tuple) {
  apply(Delta{relation, std::move(tuple), +1});
}

void Engine::apply(const Delta& delta) {
  enqueue(delta);
  drain();
}

void Engine::enqueue(Delta delta) { worklist_.push_back(std::move(delta)); }

void Engine::drain() {
  if (draining_) return;  // the active drain loop will pick new work up
  draining_ = true;
  std::uint64_t steps = 0;
  while (!worklist_.empty()) {
    if (++steps > k_max_local_steps) {
      draining_ = false;
      throw Error("NDlog engine at '" + node_name_ +
                  "' did not reach a local fixpoint");
    }
    const Delta delta = std::move(worklist_.front());
    worklist_.pop_front();
    process(delta);
  }
  draining_ = false;
}

void Engine::process(const Delta& delta) {
  if (is_materialized(delta.relation)) {
    auto& store = stores_[delta.relation];
    auto it = store.find(delta.tuple);
    const int old_count = it == store.end() ? 0 : it->second;
    const int new_count = old_count + delta.polarity;
    if (new_count < 0) {
      throw Error("negative derivation count for " + delta.relation +
                  tuple_to_string(delta.tuple) + " at node '" + node_name_ +
                  "'");
    }
    if (new_count == 0) {
      if (it != store.end()) store.erase(it);
    } else if (it == store.end()) {
      store.emplace(delta.tuple, new_count);
    } else {
      it->second = new_count;
    }
    // Only 0 <-> 1 transitions are visible downstream (bag semantics).
    const bool transition = (old_count == 0 && new_count == 1) ||
                            (old_count == 1 && new_count == 0);
    if (!transition) return;
    if (observer_) observer_(delta);
  }
  fire_rules(delta);
}

void Engine::fire_rules(const Delta& delta) {
  const auto it = rule_index_.find(delta.relation);
  if (it == rule_index_.end()) return;
  for (const auto& [rule_idx, element_idx] : it->second) {
    if (program_.rules[rule_idx].head.has_aggregate()) {
      refresh_aggregate(rule_idx, delta);
    } else {
      fire_rule(rule_idx, delta, element_idx);
    }
  }
}

void Engine::fire_rule(std::size_t rule_index, const Delta& delta,
                       std::size_t occurrence) {
  const Rule& rule = program_.rules[rule_index];
  Bindings bindings;
  if (!unify_atom(rule.body[occurrence].atom, delta.tuple, bindings)) return;
  evaluate_body(rule, 0, occurrence, bindings, delta.polarity);
}

void Engine::evaluate_body(const Rule& rule, std::size_t element_index,
                           std::size_t skip_index, Bindings& bindings,
                           int polarity) {
  if (element_index == rule.body.size()) {
    emit_head(rule, bindings, polarity);
    return;
  }
  if (element_index == skip_index) {
    evaluate_body(rule, element_index + 1, skip_index, bindings, polarity);
    return;
  }
  const BodyElement& element = rule.body[element_index];
  if (element.kind == BodyElement::Kind::constraint) {
    Bindings scoped = bindings;
    if (try_bind_or_filter(element.constraint, scoped)) {
      evaluate_body(rule, element_index + 1, skip_index, scoped, polarity);
    }
    return;
  }
  // Join against the current contents of the atom's relation. Emissions
  // during recursion only enqueue deltas (no in-place store mutation), so
  // iterating the store is safe.
  const auto store_it = stores_.find(element.atom.relation);
  if (store_it == stores_.end()) return;
  for (const auto& [tuple, count] : store_it->second) {
    if (count <= 0) continue;
    Bindings scoped = bindings;
    if (unify_atom(element.atom, tuple, scoped)) {
      evaluate_body(rule, element_index + 1, skip_index, scoped, polarity);
    }
  }
}

void Engine::emit_head(const Rule& rule, const Bindings& bindings,
                       int polarity) {
  ++rule_firings_;
  Tuple head_tuple;
  head_tuple.reserve(rule.head.args.size());
  for (const HeadArg& arg : rule.head.args) {
    head_tuple.push_back(evaluate(arg.expr, bindings));
  }
  const std::size_t loc = rule.head.location_index.value_or(0);
  const std::string& target = head_tuple.at(loc).as_atom();
  if (target == node_name_) {
    enqueue(Delta{rule.head.relation, std::move(head_tuple), polarity});
  } else if (remote_sink_) {
    remote_sink_(RemoteDelta{
        target, Delta{rule.head.relation, std::move(head_tuple), polarity}});
  }
}

void Engine::refresh_aggregate(std::size_t rule_index, const Delta& delta) {
  const Rule& rule = program_.rules[rule_index];
  const std::size_t agg_pos = aggregate_position(rule.head);

  // Recover the group key from the delta row (whether it was an insert or
  // a delete, its group may need recomputation). Row filters that reject
  // the tuple mean it never participated in the view.
  Bindings bindings;
  if (!unify_atom(rule.body.front().atom, delta.tuple, bindings)) return;
  for (std::size_t e = 1; e < rule.body.size(); ++e) {
    if (!try_bind_or_filter(rule.body[e].constraint, bindings)) return;
  }
  Tuple group_key;
  for (std::size_t i = 0; i < agg_pos; ++i) {
    group_key.push_back(evaluate(rule.head.args[i].expr, bindings));
  }

  const std::optional<Tuple> winner = compute_group_winner(rule, group_key);
  AggregateState& state = aggregate_state_.at(rule_index);
  const auto current = state.winners.find(group_key);

  const bool unchanged =
      (current == state.winners.end() && !winner.has_value()) ||
      (current != state.winners.end() && winner.has_value() &&
       current->second == *winner);
  if (unchanged) return;

  ++rule_firings_;
  const std::size_t loc = rule.head.location_index.value_or(0);
  if (current != state.winners.end()) {
    Tuple old = current->second;
    state.winners.erase(current);
    if (old.at(loc).as_atom() != node_name_) {
      throw InvalidArgument("aggregate heads must be located at their node");
    }
    enqueue(Delta{rule.head.relation, std::move(old), -1});
  }
  if (winner.has_value()) {
    state.winners.emplace(group_key, *winner);
    if (winner->at(loc).as_atom() != node_name_) {
      throw InvalidArgument("aggregate heads must be located at their node");
    }
    enqueue(Delta{rule.head.relation, *winner, +1});
  }
}

std::optional<Tuple> Engine::compute_group_winner(const Rule& rule,
                                                  const Tuple& group_key) {
  const std::size_t agg_pos = aggregate_position(rule.head);
  const HeadArg& agg = rule.head.args[agg_pos];
  const AggregateBetter& better = registry_->aggregate(agg.aggregate_function);

  struct Candidate {
    Value agg_value;
    Tuple head;
  };
  std::vector<Candidate> candidates;

  const auto store_it = stores_.find(rule.body.front().atom.relation);
  if (store_it != stores_.end()) {
    for (const auto& [tuple, count] : store_it->second) {
      if (count <= 0) continue;
      Bindings bindings;
      if (!unify_atom(rule.body.front().atom, tuple, bindings)) continue;
      bool ok = true;
      for (std::size_t e = 1; e < rule.body.size() && ok; ++e) {
        ok = try_bind_or_filter(rule.body[e].constraint, bindings);
      }
      if (!ok) continue;
      // Group membership check.
      bool in_group = true;
      for (std::size_t i = 0; i < agg_pos && in_group; ++i) {
        in_group = evaluate(rule.head.args[i].expr, bindings) == group_key[i];
      }
      if (!in_group) continue;

      Candidate candidate;
      const auto agg_binding = bindings.find(agg.aggregate_variable);
      if (agg_binding == bindings.end()) {
        throw InvalidArgument("aggregate variable '" + agg.aggregate_variable +
                              "' is unbound in rule '" + rule.label + "'");
      }
      candidate.agg_value = agg_binding->second;
      for (std::size_t i = 0; i < rule.head.args.size(); ++i) {
        candidate.head.push_back(
            i == agg_pos ? candidate.agg_value
                         : evaluate(rule.head.args[i].expr, bindings));
      }
      candidates.push_back(std::move(candidate));
    }
  }
  if (candidates.empty()) return std::nullopt;

  // Winner: a non-dominated candidate (no other strictly better under the
  // aggregate's predicate), tie-broken by structural order of the full
  // head tuple for determinism. O(n^2) but groups are small.
  const Candidate* best = nullptr;
  for (const Candidate& c : candidates) {
    bool dominated = false;
    for (const Candidate& other : candidates) {
      if (&other != &c && better(other.agg_value, c.agg_value)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    if (best == nullptr || c.head < best->head) best = &c;
  }
  if (best == nullptr) {
    // A "better" cycle among candidates (possible with disputing policy
    // comparators): fall back to the structurally smallest, keeping the
    // view deterministic.
    best = &candidates.front();
    for (const Candidate& c : candidates) {
      if (c.head < best->head) best = &c;
    }
  }
  return best->head;
}

bool Engine::unify_atom(const BodyAtom& atom, const Tuple& tuple,
                        Bindings& bindings) const {
  if (atom.args.size() != tuple.size()) return false;
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    const Expr& arg = atom.args[i];
    switch (arg.kind) {
      case ExprKind::variable: {
        const auto it = bindings.find(arg.name);
        if (it == bindings.end()) {
          bindings.emplace(arg.name, tuple[i]);
        } else if (it->second != tuple[i]) {
          return false;
        }
        break;
      }
      case ExprKind::constant:
        if (arg.literal != tuple[i]) return false;
        break;
      case ExprKind::call:
        if (evaluate(arg, bindings) != tuple[i]) return false;
        break;
    }
  }
  return true;
}

Value Engine::evaluate(const Expr& expr, const Bindings& bindings) const {
  switch (expr.kind) {
    case ExprKind::variable: {
      const auto it = bindings.find(expr.name);
      if (it == bindings.end()) {
        throw InvalidArgument("unbound NDlog variable '" + expr.name + "'");
      }
      return it->second;
    }
    case ExprKind::constant:
      return expr.literal;
    case ExprKind::call: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const Expr& arg : expr.args) args.push_back(evaluate(arg, bindings));
      return registry_->call(expr.name, args);
    }
  }
  throw InvalidArgument("unknown expression kind");
}

bool Engine::try_bind_or_filter(const Constraint& constraint,
                                Bindings& bindings) const {
  if (constraint.op == ComparisonOp::eq) {
    // Assignment forms: unbound variable on one side.
    if (constraint.lhs.kind == ExprKind::variable &&
        !bindings.contains(constraint.lhs.name)) {
      bindings.emplace(constraint.lhs.name,
                       evaluate(constraint.rhs, bindings));
      return true;
    }
    if (constraint.rhs.kind == ExprKind::variable &&
        !bindings.contains(constraint.rhs.name)) {
      bindings.emplace(constraint.rhs.name,
                       evaluate(constraint.lhs, bindings));
      return true;
    }
  }
  const Value lhs = evaluate(constraint.lhs, bindings);
  const Value rhs = evaluate(constraint.rhs, bindings);
  switch (constraint.op) {
    case ComparisonOp::eq:
      return lhs == rhs;
    case ComparisonOp::ne:
      return lhs != rhs;
    case ComparisonOp::lt:
      return lhs.as_integer() < rhs.as_integer();
    case ComparisonOp::le:
      return lhs.as_integer() <= rhs.as_integer();
    case ComparisonOp::gt:
      return lhs.as_integer() > rhs.as_integer();
    case ComparisonOp::ge:
      return lhs.as_integer() >= rhs.as_integer();
  }
  return false;
}

std::vector<Tuple> Engine::relation_contents(
    const std::string& relation) const {
  std::vector<Tuple> out;
  const auto it = stores_.find(relation);
  if (it == stores_.end()) return out;
  for (const auto& [tuple, count] : it->second) {
    if (count > 0) out.push_back(tuple);
  }
  return out;
}

int Engine::count(const std::string& relation, const Tuple& tuple) const {
  const auto it = stores_.find(relation);
  if (it == stores_.end()) return 0;
  const auto tuple_it = it->second.find(tuple);
  return tuple_it == it->second.end() ? 0 : tuple_it->second;
}

}  // namespace fsr::ndlog
