// Per-node NDlog evaluation engine.
//
// Executes one node's share of a distributed NDlog program in the
// RapidNet/P2 style: pipelined, incremental, with both insertion and
// deletion deltas (count-based view maintenance). This delta model is what
// makes divergent configurations (BAD GADGET, the Figure-3 iBGP gadget)
// actually oscillate in emulation: when a node's best route changes, the
// old derivation is retracted downstream and the new one installed,
// indefinitely if the policies dispute.
//
// Semantics implemented:
//   * materialized relations hold tuples with derivation counts; deltas
//     propagate downstream only on 0 <-> 1 count transitions;
//   * non-materialized relations (e.g. msg) are events: deltas flow
//     through the rules but are never stored;
//   * rules evaluate body elements in source order: predicate atoms join
//     against the local stores, Var=expr binds on first sight and filters
//     afterwards, comparisons filter;
//   * aggregate heads (localOpt(@U,D,a_pref<S>,P)) maintain one winner per
//     group. Head arguments before the aggregate form the group key;
//     arguments after it are payload taken from the winning body row; the
//     winner is a non-dominated row under the aggregate's "better"
//     predicate, tie-broken structurally for determinism;
//   * head tuples whose location specifier is a different node are handed
//     to the remote sink (the distributed runtime routes them).
#ifndef FSR_NDLOG_ENGINE_H
#define FSR_NDLOG_ENGINE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ndlog/ast.h"
#include "ndlog/functions.h"
#include "ndlog/value.h"

namespace fsr::ndlog {

/// A tuple change: polarity +1 (derive) or -1 (retract).
struct Delta {
  std::string relation;
  Tuple tuple;
  int polarity = +1;
};

/// A delta whose head located at another node.
struct RemoteDelta {
  std::string target_node;
  Delta delta;
};

class Engine {
 public:
  using RemoteSink = std::function<void(RemoteDelta)>;
  /// Observes local store transitions (after counts change); used by the
  /// runtime for convergence tracking and by tests.
  using Observer = std::function<void(const Delta&)>;

  /// `registry` must outlive the engine.
  Engine(std::string node_name, const Program& program,
         const FunctionRegistry* registry);

  const std::string& node_name() const noexcept { return node_name_; }

  void set_remote_sink(RemoteSink sink) { remote_sink_ = std::move(sink); }
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Applies an externally produced delta (base fact or network arrival)
  /// and runs local rules to fixpoint. Remote head tuples are emitted
  /// through the sink as they are derived.
  void apply(const Delta& delta);

  /// Convenience: apply({relation, tuple, +1}).
  void insert(const std::string& relation, Tuple tuple);

  /// Current contents (count > 0) of a materialized relation, sorted.
  std::vector<Tuple> relation_contents(const std::string& relation) const;

  /// Count of a specific tuple (0 when absent).
  int count(const std::string& relation, const Tuple& tuple) const;

  /// Total number of local rule firings so far (diagnostics/benchmarks).
  std::uint64_t rule_firings() const noexcept { return rule_firings_; }

 private:
  using Bindings = std::map<std::string, Value>;

  struct AggregateState {
    // group key -> currently materialized winning head tuple.
    std::map<Tuple, Tuple> winners;
  };

  void enqueue(Delta delta);
  void drain();
  void process(const Delta& delta);
  void fire_rules(const Delta& delta);
  void fire_rule(std::size_t rule_index, const Delta& delta,
                 std::size_t occurrence);
  void evaluate_body(const Rule& rule, std::size_t element_index,
                     std::size_t skip_index, Bindings& bindings,
                     int polarity);
  void emit_head(const Rule& rule, const Bindings& bindings, int polarity);
  void refresh_aggregate(std::size_t rule_index, const Delta& delta);
  std::optional<Tuple> compute_group_winner(const Rule& rule,
                                            const Tuple& group_key);

  bool unify_atom(const BodyAtom& atom, const Tuple& tuple,
                  Bindings& bindings) const;
  Value evaluate(const Expr& expr, const Bindings& bindings) const;
  bool try_bind_or_filter(const Constraint& constraint,
                          Bindings& bindings) const;

  bool is_materialized(const std::string& relation) const;

  std::string node_name_;
  const Program& program_;
  const FunctionRegistry* registry_;
  RemoteSink remote_sink_;
  Observer observer_;

  std::map<std::string, std::map<Tuple, int>> stores_;
  std::set<std::string> materialized_;
  // relation -> list of (rule index, body element index of the occurrence)
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      rule_index_;
  // rule index -> aggregate maintenance state (aggregate rules only)
  std::map<std::size_t, AggregateState> aggregate_state_;

  std::deque<Delta> worklist_;
  bool draining_ = false;
  std::uint64_t rule_firings_ = 0;
};

}  // namespace fsr::ndlog

#endif  // FSR_NDLOG_ENGINE_H
