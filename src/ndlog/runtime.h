// Distributed NDlog runtime: one Engine per simulated node, wired through
// the discrete-event network simulator.
//
// Remote deltas produced by a node's rules are buffered and flushed by a
// periodic batching timer (the paper batches route advertisements every
// second); opposite-polarity deltas for the same tuple cancel within a
// batch. Each surviving delta travels as one message whose wire size is
// the tuple's serialized size plus a fixed header. FIFO links preserve
// delta order, which keeps the count-based view maintenance sound.
//
// The runtime tracks convergence as the time of the last change to a
// designated relation (localOpt for GPV) across all nodes; an execution
// "quiesces" when the simulator's event queue drains.
#ifndef FSR_NDLOG_RUNTIME_H
#define FSR_NDLOG_RUNTIME_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ndlog/engine.h"
#include "ndlog/parser.h"
#include "net/simulator.h"

namespace fsr::ndlog {

struct RuntimeOptions {
  /// Advertisement batching period; 0 sends every delta immediately.
  net::Time batch_interval = net::k_second;
  /// Random drift added to each flush instant, as a fraction of the batch
  /// interval (default 5%). Router advertisement timers are not phase
  /// locked in practice; without drift, symmetric disputes such as
  /// DISAGREE can flap forever between their two stable states.
  double batch_drift = 0.05;
  /// Fixed per-message header bytes added to each delta's wire size.
  std::size_t message_overhead_bytes = 20;
  /// Relation whose last change defines the convergence instant.
  std::string tracked_relation = "localOpt";
};

struct RunResult {
  bool quiesced = false;          // event queue drained before the deadline
  net::Time convergence_time = 0;  // last change to the tracked relation
  net::Time end_time = 0;          // simulation clock when run() returned
  std::uint64_t messages = 0;      // network messages sent
  std::uint64_t bytes = 0;         // network bytes sent
  std::uint64_t tracked_changes = 0;
};

class Runtime {
 public:
  /// `program` and `registry` must outlive the runtime.
  Runtime(net::Simulator& simulator, const Program& program,
          const FunctionRegistry* registry, RuntimeOptions options = {});

  /// Creates the node and its engine. Node names must match the atoms used
  /// as location specifiers in the program's tuples.
  void add_node(const std::string& name);

  void add_link(const std::string& a, const std::string& b,
                net::LinkConfig config);

  /// Loads the program's own ground facts into the owning nodes, then any
  /// additional facts passed here. Must be called before run().
  void load_program_facts();
  void insert_fact(const std::string& node, const std::string& relation,
                   Tuple tuple);

  /// Applies an arbitrary delta at a node (e.g. scheduled churn: retract a
  /// base fact and insert a replacement mid-run). Flushes are scheduled
  /// for any remote deltas the change produces.
  void apply_delta(const std::string& node, const Delta& delta);

  /// Runs the simulation until quiescence or `max_time`.
  RunResult run(net::Time max_time);

  Engine& engine(const std::string& node);
  const Engine& engine(const std::string& node) const;
  net::Simulator& simulator() noexcept { return simulator_; }

  /// Bandwidth series access for the Figure 5/6 harnesses.
  const net::TrafficStats& stats() const noexcept {
    return simulator_.stats();
  }

 private:
  struct NodeState {
    net::NodeId id = 0;
    std::unique_ptr<Engine> engine;
    // Pending outgoing deltas: (target node, delta); coalesced at flush.
    std::vector<RemoteDelta> outbox;
    bool flush_scheduled = false;
  };

  NodeState& state(const std::string& node);
  void handle_remote(const std::string& sender, RemoteDelta remote);
  void flush(const std::string& sender);
  void schedule_flush(const std::string& sender);
  void deliver(net::NodeId from, net::NodeId to, const net::Message& message);

  net::Simulator& simulator_;
  const Program& program_;
  const FunctionRegistry* registry_;
  RuntimeOptions options_;
  std::map<std::string, NodeState> nodes_;
  net::Time last_tracked_change_ = 0;
  std::uint64_t tracked_changes_ = 0;
};

}  // namespace fsr::ndlog

#endif  // FSR_NDLOG_RUNTIME_H
