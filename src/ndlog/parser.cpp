#include "ndlog/parser.h"

#include <cctype>

#include "util/error.h"

namespace fsr::ndlog {
namespace {

enum class TokenKind {
  identifier,  // foo, Foo, f_bar (variables vs atoms decided by case)
  number,
  lparen,
  rparen,
  lbracket,
  rbracket,
  comma,
  period,
  at,
  implies,  // :-
  op_eq,    // =
  op_ne,    // !=
  op_lt,
  op_le,
  op_gt,
  op_ge,
  end,
};

struct Token {
  TokenKind kind = TokenKind::end;
  std::string text;
  std::int64_t number = 0;
  int line = 1;
  int column = 1;
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view source) : source_(source) {}

  Token next() {
    skip_trivia();
    Token tok;
    tok.line = line_;
    tok.column = column_;
    if (pos_ >= source_.size()) return tok;  // end

    const char c = source_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      tok.kind = TokenKind::identifier;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) != 0 ||
              source_[pos_] == '_')) {
        tok.text.push_back(source_[pos_]);
        advance();
      }
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '-' && pos_ + 1 < source_.size() &&
         std::isdigit(static_cast<unsigned char>(source_[pos_ + 1])) != 0)) {
      tok.kind = TokenKind::number;
      std::string digits;
      if (c == '-') {
        digits.push_back('-');
        advance();
      }
      while (pos_ < source_.size() &&
             std::isdigit(static_cast<unsigned char>(source_[pos_])) != 0) {
        digits.push_back(source_[pos_]);
        advance();
      }
      tok.number = std::stoll(digits);
      tok.text = digits;
      return tok;
    }
    if (c == '\'' || c == '"') {
      // Quoted atom: 'c' or "c".
      const char quote = c;
      advance();
      tok.kind = TokenKind::identifier;
      while (pos_ < source_.size() && source_[pos_] != quote) {
        tok.text.push_back(source_[pos_]);
        advance();
      }
      if (pos_ >= source_.size()) {
        throw ParseError("unterminated quoted atom", tok.line, tok.column);
      }
      advance();  // closing quote
      return tok;
    }

    advance();
    switch (c) {
      case '(':
        tok.kind = TokenKind::lparen;
        return tok;
      case ')':
        tok.kind = TokenKind::rparen;
        return tok;
      case '[':
        tok.kind = TokenKind::lbracket;
        return tok;
      case ']':
        tok.kind = TokenKind::rbracket;
        return tok;
      case ',':
        tok.kind = TokenKind::comma;
        return tok;
      case '.':
        tok.kind = TokenKind::period;
        return tok;
      case '@':
        tok.kind = TokenKind::at;
        return tok;
      case ':':
        if (pos_ < source_.size() && source_[pos_] == '-') {
          advance();
          tok.kind = TokenKind::implies;
          return tok;
        }
        throw ParseError("expected ':-'", tok.line, tok.column);
      case '=':
        if (pos_ < source_.size() && source_[pos_] == '=') advance();  // ==
        tok.kind = TokenKind::op_eq;
        return tok;
      case '!':
        if (pos_ < source_.size() && source_[pos_] == '=') {
          advance();
          tok.kind = TokenKind::op_ne;
          return tok;
        }
        throw ParseError("expected '!='", tok.line, tok.column);
      case '<':
        if (pos_ < source_.size() && source_[pos_] == '=') {
          advance();
          tok.kind = TokenKind::op_le;
          return tok;
        }
        tok.kind = TokenKind::op_lt;
        return tok;
      case '>':
        if (pos_ < source_.size() && source_[pos_] == '=') {
          advance();
          tok.kind = TokenKind::op_ge;
          return tok;
        }
        tok.kind = TokenKind::op_gt;
        return tok;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         tok.line, tok.column);
    }
  }

 private:
  void advance() {
    if (source_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_trivia() {
    while (pos_ < source_.size()) {
      const char c = source_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
      } else if (c == '/' && pos_ + 1 < source_.size() &&
                 source_[pos_ + 1] == '/') {
        while (pos_ < source_.size() && source_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool is_variable_name(const std::string& text) {
  return !text.empty() && std::isupper(static_cast<unsigned char>(text[0]));
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokenizer_(source) {
    shift();
    shift();  // fill lookahead_ and ahead_
  }

  Program parse() {
    Program program;
    while (lookahead_.kind != TokenKind::end) {
      parse_statement(program);
    }
    return program;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(what, lookahead_.line, lookahead_.column);
  }

  void shift() {
    lookahead_ = ahead_;
    ahead_ = tokenizer_.next();
  }

  void expect(TokenKind kind, const char* what) {
    if (lookahead_.kind != kind) fail(std::string("expected ") + what);
    shift();
  }

  std::string expect_identifier(const char* what) {
    if (lookahead_.kind != TokenKind::identifier) {
      fail(std::string("expected ") + what);
    }
    std::string text = lookahead_.text;
    shift();
    return text;
  }

  void parse_statement(Program& program) {
    if (lookahead_.kind == TokenKind::identifier &&
        lookahead_.text == "materialize" && ahead_.kind == TokenKind::lparen) {
      parse_materialize(program);
      return;
    }
    parse_rule_or_fact(program);
  }

  // materialize(rel, keys(...)). — optional RapidNet lifetime/size args
  // (identifiers or numbers) before keys are accepted and ignored.
  void parse_materialize(Program& program) {
    shift();  // materialize
    expect(TokenKind::lparen, "'('");
    MaterializeDecl decl;
    decl.relation = expect_identifier("relation name");
    expect(TokenKind::comma, "','");
    while (!(lookahead_.kind == TokenKind::identifier &&
             lookahead_.text == "keys")) {
      if (lookahead_.kind != TokenKind::identifier &&
          lookahead_.kind != TokenKind::number) {
        fail("expected keys(...) in materialize");
      }
      shift();
      expect(TokenKind::comma, "','");
    }
    shift();  // keys
    expect(TokenKind::lparen, "'('");
    while (true) {
      if (lookahead_.kind != TokenKind::number || lookahead_.number < 1) {
        fail("expected positive key position");
      }
      decl.key_positions.push_back(
          static_cast<std::size_t>(lookahead_.number));
      shift();
      if (lookahead_.kind == TokenKind::comma) {
        shift();
        continue;
      }
      break;
    }
    expect(TokenKind::rparen, "')'");
    expect(TokenKind::rparen, "')'");
    expect(TokenKind::period, "'.'");
    program.materialized.push_back(std::move(decl));
  }

  void parse_rule_or_fact(Program& program) {
    std::string label;
    std::string relation = expect_identifier("rule label or relation");
    if (lookahead_.kind == TokenKind::identifier) {
      label = std::move(relation);
      relation = expect_identifier("head relation");
    }

    RuleHead head;
    head.relation = std::move(relation);
    expect(TokenKind::lparen, "'('");
    parse_head_args(head);
    expect(TokenKind::rparen, "')'");

    if (lookahead_.kind == TokenKind::period) {
      shift();
      if (!label.empty()) fail("facts cannot carry a rule label");
      program.facts.push_back(fact_from_head(head));
      return;
    }

    expect(TokenKind::implies, "':-' or '.'");
    Rule rule;
    rule.label = std::move(label);
    rule.head = std::move(head);
    while (true) {
      rule.body.push_back(parse_body_element());
      if (lookahead_.kind == TokenKind::comma) {
        shift();
        continue;
      }
      break;
    }
    expect(TokenKind::period, "'.'");
    program.rules.push_back(std::move(rule));
  }

  void parse_head_args(RuleHead& head) {
    while (true) {
      HeadArg arg;
      if (lookahead_.kind == TokenKind::at) {
        shift();
        head.location_index = head.args.size();
      }
      // Aggregate: ident '<' Var '>' (only meaningful in heads).
      if (lookahead_.kind == TokenKind::identifier &&
          ahead_.kind == TokenKind::op_lt) {
        arg.is_aggregate = true;
        arg.aggregate_function = expect_identifier("aggregate function");
        shift();  // '<'
        arg.aggregate_variable = expect_identifier("aggregate variable");
        if (!is_variable_name(arg.aggregate_variable)) {
          fail("aggregate must range over a variable");
        }
        expect(TokenKind::op_gt, "'>'");
      } else {
        arg.expr = parse_expr();
      }
      head.args.push_back(std::move(arg));
      if (lookahead_.kind == TokenKind::comma) {
        shift();
        continue;
      }
      return;
    }
  }

  Fact fact_from_head(const RuleHead& head) {
    Fact fact;
    fact.relation = head.relation;
    fact.location_index = head.location_index.value_or(0);
    for (const HeadArg& arg : head.args) {
      if (arg.is_aggregate) fail("facts cannot contain aggregates");
      fact.tuple.push_back(constant_value(arg.expr));
    }
    return fact;
  }

  Value constant_value(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::constant:
        return expr.literal;
      case ExprKind::call: {
        if (expr.name != "f_mklist") {
          fail("facts may not contain function calls: " + expr.to_string());
        }
        std::vector<Value> items;
        items.reserve(expr.args.size());
        for (const Expr& arg : expr.args) items.push_back(constant_value(arg));
        return Value::list(std::move(items));
      }
      case ExprKind::variable:
        fail("facts must be ground (no variables): " + expr.to_string());
    }
    fail("unreachable");
  }

  BodyElement parse_body_element() {
    BodyElement element;
    // Possible shapes: predicate atom p(...), or constraint expr OP expr.
    // A lower-case identifier followed by '(' is ambiguous (atom vs call);
    // parse it, then look for a comparison operator.
    Expr lhs = parse_expr_allowing_atom();
    if (lhs.kind == ExprKind::call && !is_comparison(lookahead_.kind)) {
      // It was a predicate atom after all.
      element.kind = BodyElement::Kind::atom;
      element.atom = atom_from_call(lhs);
      return element;
    }
    if (!is_comparison(lookahead_.kind)) {
      fail("expected comparison operator after expression");
    }
    element.kind = BodyElement::Kind::constraint;
    element.constraint.lhs = std::move(lhs);
    element.constraint.op = comparison_op(lookahead_.kind);
    shift();
    element.constraint.rhs = parse_expr();
    return element;
  }

  static bool is_comparison(TokenKind kind) noexcept {
    return kind == TokenKind::op_eq || kind == TokenKind::op_ne ||
           kind == TokenKind::op_lt || kind == TokenKind::op_le ||
           kind == TokenKind::op_gt || kind == TokenKind::op_ge;
  }

  static ComparisonOp comparison_op(TokenKind kind) {
    switch (kind) {
      case TokenKind::op_eq:
        return ComparisonOp::eq;
      case TokenKind::op_ne:
        return ComparisonOp::ne;
      case TokenKind::op_lt:
        return ComparisonOp::lt;
      case TokenKind::op_le:
        return ComparisonOp::le;
      case TokenKind::op_gt:
        return ComparisonOp::gt;
      case TokenKind::op_ge:
        return ComparisonOp::ge;
      default:
        throw InvalidArgument("not a comparison token");
    }
  }

  /// Converts a parsed call back into a predicate atom, recovering '@'
  /// markers that parse_expr_allowing_atom recorded.
  BodyAtom atom_from_call(Expr& call) {
    BodyAtom atom;
    atom.relation = std::move(call.name);
    atom.location_index = pending_location_;
    pending_location_.reset();
    atom.args = std::move(call.args);
    return atom;
  }

  /// Parses an expression; at the top of a body element a call's arguments
  /// may carry '@' markers (predicate position). The marker index is
  /// stashed in pending_location_.
  Expr parse_expr_allowing_atom() {
    if (lookahead_.kind == TokenKind::identifier &&
        ahead_.kind == TokenKind::lparen &&
        !is_variable_name(lookahead_.text)) {
      std::string name = expect_identifier("name");
      shift();  // '('
      std::vector<Expr> args;
      pending_location_.reset();
      if (lookahead_.kind != TokenKind::rparen) {
        while (true) {
          if (lookahead_.kind == TokenKind::at) {
            shift();
            pending_location_ = args.size();
          }
          args.push_back(parse_expr());
          if (lookahead_.kind == TokenKind::comma) {
            shift();
            continue;
          }
          break;
        }
      }
      expect(TokenKind::rparen, "')'");
      return Expr::call(std::move(name), std::move(args));
    }
    return parse_expr();
  }

  Expr parse_expr() {
    switch (lookahead_.kind) {
      case TokenKind::number: {
        const std::int64_t v = lookahead_.number;
        shift();
        return Expr::constant(Value::integer(v));
      }
      case TokenKind::lbracket: {
        shift();
        std::vector<Expr> items;
        if (lookahead_.kind != TokenKind::rbracket) {
          while (true) {
            items.push_back(parse_expr());
            if (lookahead_.kind == TokenKind::comma) {
              shift();
              continue;
            }
            break;
          }
        }
        expect(TokenKind::rbracket, "']'");
        return Expr::call("f_mklist", std::move(items));
      }
      case TokenKind::identifier: {
        if (ahead_.kind == TokenKind::lparen &&
            !is_variable_name(lookahead_.text)) {
          std::string name = expect_identifier("function name");
          shift();  // '('
          std::vector<Expr> args;
          if (lookahead_.kind != TokenKind::rparen) {
            while (true) {
              args.push_back(parse_expr());
              if (lookahead_.kind == TokenKind::comma) {
                shift();
                continue;
              }
              break;
            }
          }
          expect(TokenKind::rparen, "')'");
          return Expr::call(std::move(name), std::move(args));
        }
        std::string text = expect_identifier("identifier");
        if (is_variable_name(text)) return Expr::variable(std::move(text));
        return Expr::constant(Value::atom(std::move(text)));
      }
      default:
        fail("expected an expression");
    }
  }

  Tokenizer tokenizer_;
  Token lookahead_;
  Token ahead_;
  std::optional<std::size_t> pending_location_;
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser(source).parse();
}

}  // namespace fsr::ndlog
