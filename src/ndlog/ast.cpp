#include "ndlog/ast.h"

namespace fsr::ndlog {
namespace {

const char* op_spelling(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::eq:
      return "=";
    case ComparisonOp::ne:
      return "!=";
    case ComparisonOp::lt:
      return "<";
    case ComparisonOp::le:
      return "<=";
    case ComparisonOp::gt:
      return ">";
    case ComparisonOp::ge:
      return ">=";
  }
  return "?";
}

}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::variable:
      return name;
    case ExprKind::constant:
      return literal.to_string();
    case ExprKind::call: {
      std::string out = name + "(";
      for (std::size_t i = 0; i < args.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += args[i].to_string();
      }
      out.push_back(')');
      return out;
    }
  }
  return "?";
}

std::string HeadArg::to_string() const {
  if (is_aggregate) return aggregate_function + "<" + aggregate_variable + ">";
  return expr.to_string();
}

std::string BodyAtom::to_string() const {
  std::string out = relation + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out.push_back(',');
    if (location_index.has_value() && *location_index == i) out.push_back('@');
    out += args[i].to_string();
  }
  out.push_back(')');
  return out;
}

std::string Constraint::to_string() const {
  return lhs.to_string() + op_spelling(op) + rhs.to_string();
}

bool RuleHead::has_aggregate() const noexcept {
  for (const HeadArg& arg : args) {
    if (arg.is_aggregate) return true;
  }
  return false;
}

std::string RuleHead::to_string() const {
  std::string out = relation + "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out.push_back(',');
    if (location_index.has_value() && *location_index == i) out.push_back('@');
    out += args[i].to_string();
  }
  out.push_back(')');
  return out;
}

std::string Rule::to_string() const {
  std::string out;
  if (!label.empty()) out += label + " ";
  out += head.to_string() + " :- ";
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (i != 0) out += ", ";
    out += body[i].kind == BodyElement::Kind::atom
               ? body[i].atom.to_string()
               : body[i].constraint.to_string();
  }
  out.push_back('.');
  return out;
}

const MaterializeDecl* Program::find_materialize(
    const std::string& relation) const {
  for (const MaterializeDecl& decl : materialized) {
    if (decl.relation == relation) return &decl;
  }
  return nullptr;
}

std::string Program::to_string() const {
  std::string out;
  for (const MaterializeDecl& decl : materialized) {
    out += "materialize(" + decl.relation + ", keys(";
    for (std::size_t i = 0; i < decl.key_positions.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += std::to_string(decl.key_positions[i]);
    }
    out += ")).\n";
  }
  for (const Fact& fact : facts) {
    out += fact.relation + tuple_to_string(fact.tuple) + ".\n";
  }
  for (const Rule& rule : rules) {
    out += rule.to_string() + "\n";
  }
  return out;
}

}  // namespace fsr::ndlog
