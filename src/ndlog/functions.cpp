#include "ndlog/functions.h"

#include <algorithm>

#include "util/error.h"

namespace fsr::ndlog {

void FunctionRegistry::register_function(const std::string& name, int arity,
                                         NativeFunction fn) {
  if (name.empty() || fn == nullptr) {
    throw InvalidArgument("function registration requires a name and body");
  }
  functions_[name] = Entry{arity, std::move(fn)};
}

void FunctionRegistry::register_aggregate(const std::string& name,
                                          AggregateBetter better) {
  if (name.empty() || better == nullptr) {
    throw InvalidArgument("aggregate registration requires a name and body");
  }
  aggregates_[name] = std::move(better);
}

bool FunctionRegistry::has_function(const std::string& name) const {
  return functions_.contains(name);
}

bool FunctionRegistry::has_aggregate(const std::string& name) const {
  return aggregates_.contains(name);
}

Value FunctionRegistry::call(const std::string& name,
                             const std::vector<Value>& args) const {
  const auto it = functions_.find(name);
  if (it == functions_.end()) {
    throw InvalidArgument("unknown NDlog function '" + name + "'");
  }
  if (it->second.arity >= 0 &&
      static_cast<std::size_t>(it->second.arity) != args.size()) {
    throw InvalidArgument("function '" + name + "' expects " +
                          std::to_string(it->second.arity) + " arguments, got " +
                          std::to_string(args.size()));
  }
  return it->second.fn(args);
}

const AggregateBetter& FunctionRegistry::aggregate(
    const std::string& name) const {
  const auto it = aggregates_.find(name);
  if (it == aggregates_.end()) {
    throw InvalidArgument("unknown NDlog aggregate '" + name + "'");
  }
  return it->second;
}

FunctionRegistry FunctionRegistry::with_builtins() {
  FunctionRegistry registry;

  registry.register_function("f_mklist", -1, [](const std::vector<Value>& a) {
    return Value::list(a);
  });
  registry.register_function(
      "f_concatPath", 2, [](const std::vector<Value>& a) {
        std::vector<Value> path;
        path.reserve(a[1].as_list().size() + 1);
        path.push_back(a[0]);
        path.insert(path.end(), a[1].as_list().begin(), a[1].as_list().end());
        return Value::list(std::move(path));
      });
  registry.register_function("f_head", 1, [](const std::vector<Value>& a) {
    const auto& list = a[0].as_list();
    if (list.empty()) throw InvalidArgument("f_head of empty list");
    return list.front();
  });
  registry.register_function("f_last", 1, [](const std::vector<Value>& a) {
    const auto& list = a[0].as_list();
    if (list.empty()) throw InvalidArgument("f_last of empty list");
    return list.back();
  });
  registry.register_function("f_size", 1, [](const std::vector<Value>& a) {
    return Value::integer(static_cast<std::int64_t>(a[0].as_list().size()));
  });
  registry.register_function("f_member", 2, [](const std::vector<Value>& a) {
    const auto& list = a[0].as_list();
    return Value::boolean(std::find(list.begin(), list.end(), a[1]) !=
                          list.end());
  });
  registry.register_function("f_add", 2, [](const std::vector<Value>& a) {
    return Value::integer(a[0].as_integer() + a[1].as_integer());
  });
  registry.register_function("f_sub", 2, [](const std::vector<Value>& a) {
    return Value::integer(a[0].as_integer() - a[1].as_integer());
  });
  registry.register_function("f_min", 2, [](const std::vector<Value>& a) {
    return Value::integer(std::min(a[0].as_integer(), a[1].as_integer()));
  });
  registry.register_function("f_max", 2, [](const std::vector<Value>& a) {
    return Value::integer(std::max(a[0].as_integer(), a[1].as_integer()));
  });
  registry.register_function("f_lt", 2, [](const std::vector<Value>& a) {
    return Value::boolean(a[0].as_integer() < a[1].as_integer());
  });
  registry.register_function("f_le", 2, [](const std::vector<Value>& a) {
    return Value::boolean(a[0].as_integer() <= a[1].as_integer());
  });
  registry.register_function("f_mkpair", 2, [](const std::vector<Value>& a) {
    return Value::list({a[0], a[1]});
  });
  registry.register_function("f_first", 1, [](const std::vector<Value>& a) {
    const auto& list = a[0].as_list();
    if (list.size() != 2) throw InvalidArgument("f_first expects a pair");
    return list[0];
  });
  registry.register_function("f_second", 1, [](const std::vector<Value>& a) {
    const auto& list = a[0].as_list();
    if (list.size() != 2) throw InvalidArgument("f_second expects a pair");
    return list[1];
  });

  registry.register_aggregate("a_min", [](const Value& a, const Value& b) {
    return a.as_integer() < b.as_integer();
  });
  return registry;
}

}  // namespace fsr::ndlog
