// Function registry for NDlog programs.
//
// NDlog rule bodies call `f_*` functions (list manipulation, arithmetic,
// policy predicates) and heads may use `a_*` aggregates. The registry maps
// names to native C++ implementations; FSR's code generator (Section V-B)
// injects the four policy functions — f_pref, f_concatSig, f_import,
// f_export — synthesised from the input routing algebra.
//
// Aggregates are "selection" aggregates: a binary predicate
// better(a, b) -> true when `a` must win over `b`. The engine picks a
// non-dominated row (deterministically) per group.
#ifndef FSR_NDLOG_FUNCTIONS_H
#define FSR_NDLOG_FUNCTIONS_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ndlog/value.h"

namespace fsr::ndlog {

using NativeFunction = std::function<Value(const std::vector<Value>&)>;
using AggregateBetter = std::function<bool(const Value&, const Value&)>;

class FunctionRegistry {
 public:
  /// Registers `fn` under `name` with the given arity (-1 = variadic).
  /// Re-registering a name replaces the previous binding (policy functions
  /// override nothing by convention; names are namespaced by prefix).
  void register_function(const std::string& name, int arity,
                         NativeFunction fn);

  void register_aggregate(const std::string& name, AggregateBetter better);

  bool has_function(const std::string& name) const;
  bool has_aggregate(const std::string& name) const;

  /// Calls `name`; throws fsr::InvalidArgument on unknown name or arity
  /// mismatch.
  Value call(const std::string& name, const std::vector<Value>& args) const;

  const AggregateBetter& aggregate(const std::string& name) const;

  /// A registry preloaded with the built-ins:
  ///   f_mklist(...)        list construction ([a,b] literals)
  ///   f_concatPath(U,P)    prepend U to path P
  ///   f_head(P) f_last(P)  first / last element
  ///   f_size(P)            list length
  ///   f_member(P,X)        membership test -> true/false
  ///   f_add f_sub f_min f_max   integer arithmetic
  ///   f_lt f_le            integer comparisons -> true/false
  ///   f_first f_second     pair (2-list) projections
  ///   f_mkpair(A,B)        pair construction
  /// and the aggregate a_min (integer minimisation).
  static FunctionRegistry with_builtins();

 private:
  struct Entry {
    int arity = -1;
    NativeFunction fn;
  };
  std::map<std::string, Entry> functions_;
  std::map<std::string, AggregateBetter> aggregates_;
};

}  // namespace fsr::ndlog

#endif  // FSR_NDLOG_FUNCTIONS_H
