#include "ndlog/value.h"

#include "util/error.h"

namespace fsr::ndlog {

std::int64_t Value::as_integer() const {
  if (!is_integer()) {
    throw InvalidArgument("NDlog value " + to_string() + " is not an integer");
  }
  return integer_;
}

const std::string& Value::as_atom() const {
  if (!is_atom()) {
    throw InvalidArgument("NDlog value " + to_string() + " is not an atom");
  }
  return atom_;
}

const std::vector<Value>& Value::as_list() const {
  if (!is_list()) {
    throw InvalidArgument("NDlog value " + to_string() + " is not a list");
  }
  return items_;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ValueKind::integer:
      return integer_ == other.integer_;
    case ValueKind::atom:
      return atom_ == other.atom_;
    case ValueKind::list:
      return items_ == other.items_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case ValueKind::integer:
      return integer_ < other.integer_;
    case ValueKind::atom:
      return atom_ < other.atom_;
    case ValueKind::list:
      return items_ < other.items_;
  }
  return false;
}

std::string Value::to_string() const {
  switch (kind_) {
    case ValueKind::integer:
      return std::to_string(integer_);
    case ValueKind::atom:
      return atom_;
    case ValueKind::list: {
      std::string out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += items_[i].to_string();
      }
      out.push_back(']');
      return out;
    }
  }
  return "?";
}

std::size_t Value::wire_size() const noexcept {
  switch (kind_) {
    case ValueKind::integer:
      return 4;
    case ValueKind::atom:
      return atom_.size();
    case ValueKind::list: {
      std::size_t total = 2;
      for (const Value& item : items_) total += item.wire_size();
      return total;
    }
  }
  return 0;
}

std::string tuple_to_string(const Tuple& tuple) {
  std::string out = "(";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += tuple[i].to_string();
  }
  out.push_back(')');
  return out;
}

std::size_t tuple_wire_size(const Tuple& tuple) {
  std::size_t total = 0;
  for (const Value& value : tuple) total += value.wire_size();
  return total;
}

}  // namespace fsr::ndlog
