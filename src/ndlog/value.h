// Runtime values flowing through NDlog programs.
//
// NDlog tuples carry node addresses (atoms), signatures (atoms, integers,
// or pairs encoded as two-element lists), paths (lists of node atoms) and
// booleans (the atoms `true` / `false`). A Tuple is a flat vector of
// values; relations are identified by name at the engine level.
#ifndef FSR_NDLOG_VALUE_H
#define FSR_NDLOG_VALUE_H

#include <cstdint>
#include <string>
#include <vector>

namespace fsr::ndlog {

enum class ValueKind { integer, atom, list };

class Value {
 public:
  Value() : kind_(ValueKind::integer), integer_(0) {}

  static Value integer(std::int64_t v) {
    Value out;
    out.kind_ = ValueKind::integer;
    out.integer_ = v;
    return out;
  }
  static Value atom(std::string name) {
    Value out;
    out.kind_ = ValueKind::atom;
    out.atom_ = std::move(name);
    return out;
  }
  static Value list(std::vector<Value> items) {
    Value out;
    out.kind_ = ValueKind::list;
    out.items_ = std::move(items);
    return out;
  }
  static Value boolean(bool b) { return atom(b ? "true" : "false"); }

  ValueKind kind() const noexcept { return kind_; }
  bool is_integer() const noexcept { return kind_ == ValueKind::integer; }
  bool is_atom() const noexcept { return kind_ == ValueKind::atom; }
  bool is_list() const noexcept { return kind_ == ValueKind::list; }

  std::int64_t as_integer() const;
  const std::string& as_atom() const;
  const std::vector<Value>& as_list() const;

  bool truthy() const noexcept {
    return kind_ == ValueKind::atom && atom_ == "true";
  }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;  // structural; container keys

  std::string to_string() const;

  /// Approximate wire size in bytes, used by the simulator's traffic
  /// accounting (atoms: length; integers: 4; lists: sum + 2 framing).
  std::size_t wire_size() const noexcept;

 private:
  ValueKind kind_;
  std::int64_t integer_ = 0;
  std::string atom_;
  std::vector<Value> items_;
};

using Tuple = std::vector<Value>;

std::string tuple_to_string(const Tuple& tuple);
std::size_t tuple_wire_size(const Tuple& tuple);

}  // namespace fsr::ndlog

#endif  // FSR_NDLOG_VALUE_H
