// Parser for the NDlog dialect (tokenizer + recursive descent).
//
// Accepted surface syntax (see ast.h for semantics):
//
//   // comment
//   materialize(route, keys(1,2,4)).
//   materialize(link, infinity, infinity, keys(1,2)).   // RapidNet form
//   label(@a, b, c).                                    // ground fact
//   gpvRecv sig(@U,SNew,PNew) :- msg(@U,V,D,S,P), V=f_head(P),
//       label(@U,V,L), f_import(L,S)=true,
//       SNew=f_concatSig(L,S), PNew=f_concatPath(U,P).
//   gpvSelect localOpt(@U,D,a_pref<S>,P) :- route(@U,D,S,P).
//
// Conventions: variables start with an upper-case letter; relation,
// function and constant atoms start with a lower-case letter; list
// literals use brackets ([u,d]); an optional lower-case identifier before
// the head atom is the rule label.
#ifndef FSR_NDLOG_PARSER_H
#define FSR_NDLOG_PARSER_H

#include <string_view>

#include "ndlog/ast.h"

namespace fsr::ndlog {

/// Parses a complete program. Throws fsr::ParseError with line/column
/// information on malformed input.
Program parse_program(std::string_view source);

}  // namespace fsr::ndlog

#endif  // FSR_NDLOG_PARSER_H
