#include "ndlog/runtime.h"

#include <algorithm>
#include <functional>

#include "util/error.h"

namespace fsr::ndlog {

namespace {

/// Payload carried by simulator messages: one NDlog delta.
struct DeltaPayload {
  Delta delta;
};

}  // namespace

Runtime::Runtime(net::Simulator& simulator, const Program& program,
                 const FunctionRegistry* registry, RuntimeOptions options)
    : simulator_(simulator),
      program_(program),
      registry_(registry),
      options_(std::move(options)) {
  simulator_.set_receiver(
      [this](net::NodeId from, net::NodeId to, const net::Message& message) {
        deliver(from, to, message);
      });
}

void Runtime::add_node(const std::string& name) {
  if (nodes_.contains(name)) {
    throw InvalidArgument("node '" + name + "' already exists");
  }
  NodeState node;
  node.id = simulator_.add_node(name);
  node.engine = std::make_unique<Engine>(name, program_, registry_);
  node.engine->set_remote_sink([this, name](RemoteDelta remote) {
    handle_remote(name, std::move(remote));
  });
  node.engine->set_observer([this, name](const Delta& delta) {
    if (delta.relation == options_.tracked_relation) {
      last_tracked_change_ = simulator_.now();
      ++tracked_changes_;
    }
  });
  nodes_.emplace(name, std::move(node));
}

void Runtime::add_link(const std::string& a, const std::string& b,
                       net::LinkConfig config) {
  simulator_.add_link(state(a).id, state(b).id, config);
}

Runtime::NodeState& Runtime::state(const std::string& node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw InvalidArgument("unknown node '" + node + "'");
  }
  return it->second;
}

Engine& Runtime::engine(const std::string& node) {
  return *state(node).engine;
}

const Engine& Runtime::engine(const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw InvalidArgument("unknown node '" + node + "'");
  }
  return *it->second.engine;
}

void Runtime::load_program_facts() {
  for (const Fact& fact : program_.facts) {
    const std::string& owner =
        fact.tuple.at(fact.location_index).as_atom();
    insert_fact(owner, fact.relation, fact.tuple);
  }
}

void Runtime::insert_fact(const std::string& node, const std::string& relation,
                          Tuple tuple) {
  state(node).engine->apply(Delta{relation, std::move(tuple), +1});
}

void Runtime::apply_delta(const std::string& node, const Delta& delta) {
  state(node).engine->apply(delta);
  if (options_.batch_interval > 0) schedule_flush(node);
}

void Runtime::handle_remote(const std::string& sender, RemoteDelta remote) {
  NodeState& node = state(sender);
  if (options_.batch_interval <= 0) {
    // Immediate mode: one message per delta, sent as it is derived.
    const std::size_t size = tuple_wire_size(remote.delta.tuple) +
                             options_.message_overhead_bytes;
    const net::NodeId target = state(remote.target_node).id;
    simulator_.send(node.id, target,
                    net::Message{size, DeltaPayload{std::move(remote.delta)}});
    return;
  }
  node.outbox.push_back(std::move(remote));
  schedule_flush(sender);
}

void Runtime::schedule_flush(const std::string& sender) {
  NodeState& node = state(sender);
  if (node.flush_scheduled || node.outbox.empty()) return;
  node.flush_scheduled = true;
  // Align flushes to the node's next batching boundary. Boundaries carry a
  // deterministic per-node phase offset: real routers' advertisement
  // timers are not synchronised, and instances such as DISAGREE rely on
  // that asymmetry to settle (with perfectly aligned timers they oscillate
  // between their two stable states forever).
  const net::Time phase = static_cast<net::Time>(
      std::hash<std::string>{}(sender) %
      static_cast<std::size_t>(options_.batch_interval));
  const net::Time now = simulator_.now();
  net::Time next =
      ((now - phase) / options_.batch_interval + 1) * options_.batch_interval +
      phase;
  if (next <= now) next += options_.batch_interval;
  if (options_.batch_drift > 0.0) {
    const auto drift_span = static_cast<net::Time>(
        options_.batch_drift * static_cast<double>(options_.batch_interval));
    if (drift_span > 0) {
      next += simulator_.rng().uniform_int(0, drift_span);
    }
  }
  simulator_.schedule(next - now, [this, sender]() { flush(sender); });
}

void Runtime::flush(const std::string& sender) {
  NodeState& node = state(sender);
  node.flush_scheduled = false;

  // Coalesce: net polarity per (target, relation, tuple). A +1 followed by
  // a -1 within one batch cancels entirely, mirroring RapidNet's batching.
  std::map<std::pair<std::string, std::string>, std::map<Tuple, int>> net_map;
  for (RemoteDelta& remote : node.outbox) {
    net_map[{remote.target_node, remote.delta.relation}]
           [std::move(remote.delta.tuple)] += remote.delta.polarity;
  }
  node.outbox.clear();

  for (auto& [key, tuples] : net_map) {
    const auto& [target_name, relation] = key;
    const net::NodeId target = state(target_name).id;
    for (auto& [tuple, polarity] : tuples) {
      if (polarity == 0) continue;
      const int step = polarity > 0 ? +1 : -1;
      for (int i = 0; i != polarity; i += step) {
        const std::size_t size =
            tuple_wire_size(tuple) + options_.message_overhead_bytes;
        simulator_.send(
            node.id, target,
            net::Message{size, DeltaPayload{Delta{relation, tuple, step}}});
      }
    }
  }
}

void Runtime::deliver(net::NodeId /*from*/, net::NodeId to,
                      const net::Message& message) {
  const auto* payload = std::any_cast<DeltaPayload>(&message.payload);
  if (payload == nullptr) {
    throw Error("non-NDlog payload delivered to the runtime");
  }
  const std::string& name = simulator_.node_name(to);
  NodeState& node = state(name);
  node.engine->apply(payload->delta);
  // Deltas derived while applying are sitting in the outbox; make sure a
  // flush is pending (or send immediately in immediate mode - already done).
  if (options_.batch_interval > 0) schedule_flush(name);
}

RunResult Runtime::run(net::Time max_time) {
  // Kick off: any deltas already buffered by fact loading need a flush.
  for (auto& [name, node] : nodes_) {
    (void)node;
    if (options_.batch_interval > 0) schedule_flush(name);
  }
  RunResult result;
  result.quiesced = simulator_.run(max_time);
  result.end_time = simulator_.now();
  result.convergence_time = last_tracked_change_;
  result.tracked_changes = tracked_changes_;
  result.messages = simulator_.stats().total_messages();
  result.bytes = simulator_.stats().total_bytes();
  if (!result.quiesced) simulator_.clear_pending();
  return result;
}

}  // namespace fsr::ndlog
