#include "topology/hlp_domains.h"

#include "util/error.h"
#include "util/rng.h"

namespace fsr::topology {

Topology generate_hlp_domains(const HlpDomainsParams& params) {
  if (params.domain_count < 2 || params.nodes_per_domain < 2) {
    throw InvalidArgument("HLP topology needs >= 2 domains of >= 2 nodes");
  }
  util::Rng rng(params.seed);
  Topology topology;
  topology.name = "hlp-domains";

  net::LinkConfig intra;
  intra.latency = params.intra_latency;
  net::LinkConfig inter;
  inter.latency = params.inter_latency;

  const auto cost_label = [&rng](std::int64_t lo, std::int64_t hi) {
    return algebra::Value::integer(rng.uniform_int(lo, hi));
  };

  // Domains: acyclic hierarchies (node i attaches to 1-2 earlier nodes).
  std::vector<std::vector<std::string>> members(
      static_cast<std::size_t>(params.domain_count));
  for (std::int32_t d = 0; d < params.domain_count; ++d) {
    const std::string marker = "dom" + std::to_string(d);
    for (std::int32_t i = 0; i < params.nodes_per_domain; ++i) {
      const std::string name =
          "n" + std::to_string(d) + "_" + std::to_string(i);
      topology.nodes.push_back(name);
      topology.domain_of[name] = marker;
      members[static_cast<std::size_t>(d)].push_back(name);
      if (i == 0) continue;  // top provider of the domain
      const auto first =
          static_cast<std::size_t>(rng.uniform_int(0, i - 1));
      const algebra::Value c1 = cost_label(1, 3);
      topology.links.push_back(
          TopoLink{name, members[static_cast<std::size_t>(d)][first], c1, c1,
                   intra});
      if (i > 1 && rng.chance(0.4)) {
        auto second = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
        if (second == first) second = (second + 1) % static_cast<std::size_t>(i);
        const algebra::Value c2 = cost_label(1, 3);
        topology.links.push_back(
            TopoLink{name, members[static_cast<std::size_t>(d)][second], c2,
                     c2, intra});
      }
    }
  }

  // Cross-domain links between random members of distinct domains.
  std::int32_t placed = 0;
  std::int32_t guard = 0;
  while (placed < params.cross_domain_links && ++guard < 100000) {
    const auto d1 = static_cast<std::size_t>(
        rng.uniform_int(0, params.domain_count - 1));
    const auto d2 = static_cast<std::size_t>(
        rng.uniform_int(0, params.domain_count - 1));
    if (d1 == d2) continue;
    const std::string& u = members[d1][static_cast<std::size_t>(
        rng.uniform_int(0, params.nodes_per_domain - 1))];
    const std::string& v = members[d2][static_cast<std::size_t>(
        rng.uniform_int(0, params.nodes_per_domain - 1))];
    bool duplicate = false;
    for (const TopoLink& link : topology.links) {
      if ((link.u == u && link.v == v) || (link.u == v && link.v == u)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    const algebra::Value c = cost_label(5, 10);
    topology.links.push_back(TopoLink{u, v, c, c, inter});
    ++placed;
  }

  // Destination: attached to a node of domain 0 at cost 1.
  topology.destination = "dst";
  topology.nodes.push_back(topology.destination);
  topology.domain_of[topology.destination] = "dom0";
  topology.links.push_back(TopoLink{members[0].back(), topology.destination,
                                    algebra::Value::integer(1),
                                    algebra::Value::integer(1), intra});
  return topology;
}

bool is_cross_domain(const Topology& topology, const TopoLink& link) {
  return topology.domain_of.at(link.u) != topology.domain_of.at(link.v);
}

}  // namespace fsr::topology
