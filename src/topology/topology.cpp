#include "topology/topology.h"

#include <algorithm>

namespace fsr::topology {

bool Topology::has_node(const std::string& node) const {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

std::vector<std::pair<std::string, algebra::Value>>
Topology::labelled_neighbors(const std::string& node) const {
  std::vector<std::pair<std::string, algebra::Value>> out;
  for (const TopoLink& link : links) {
    if (link.u == node) out.emplace_back(link.v, link.label_uv);
    if (link.v == node) out.emplace_back(link.u, link.label_vu);
  }
  return out;
}

}  // namespace fsr::topology
