#include "topology/as_hierarchy.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "util/error.h"
#include "util/rng.h"

namespace fsr::topology {
namespace {

algebra::Value make_label(LabelScheme scheme, const char* relationship) {
  switch (scheme) {
    case LabelScheme::business:
      return algebra::Value::atom(relationship);
    case LabelScheme::business_hop_count:
      return algebra::Value::pair(algebra::Value::atom(relationship),
                                  algebra::Value::integer(1));
  }
  throw InvalidArgument("unknown label scheme");
}

}  // namespace

Topology generate_as_hierarchy(const AsHierarchyParams& params,
                               LabelScheme scheme) {
  if (params.depth < 2) {
    throw InvalidArgument("AS hierarchy needs depth >= 2");
  }
  if (params.top_level_count < 1 || params.level_growth < 1.0) {
    throw InvalidArgument("invalid AS hierarchy shape parameters");
  }
  util::Rng rng(params.seed);

  Topology topology;
  topology.name = "as-hierarchy-d" + std::to_string(params.depth);

  // Levels 0 (tier-1 providers) .. depth-1 (deepest transit customers);
  // sizes grow geometrically but are capped to keep emulations tractable
  // at depth 16 (the paper's CAIDA subgraphs are similarly modest - they
  // ran 160 RapidNet instances at most).
  constexpr std::int32_t k_level_cap = 12;
  std::vector<std::vector<std::string>> levels;
  for (std::int32_t level = 0; level < params.depth; ++level) {
    const auto ideal = static_cast<std::int32_t>(std::llround(
        params.top_level_count * std::pow(params.level_growth, level)));
    const std::int32_t count = std::clamp(ideal, 1, k_level_cap);
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(count));
    for (std::int32_t i = 0; i < count; ++i) {
      names.push_back("as" + std::to_string(level) + "_" + std::to_string(i));
      topology.nodes.push_back(names.back());
    }
    levels.push_back(std::move(names));
  }

  const algebra::Value to_customer = make_label(scheme, "c");
  const algebra::Value to_provider = make_label(scheme, "p");
  const algebra::Value to_peer = make_label(scheme, "r");

  const auto add_provider_link = [&](const std::string& provider,
                                     const std::string& customer) {
    topology.links.push_back(
        TopoLink{provider, customer, to_customer, to_provider, params.link});
  };

  // Provider attachments: every AS below the top picks 1-2 providers in
  // the level above.
  for (std::size_t level = 1; level < levels.size(); ++level) {
    const auto& above = levels[level - 1];
    for (const std::string& as_name : levels[level]) {
      const auto first = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(above.size()) - 1));
      add_provider_link(above[first], as_name);
      if (above.size() > 1 && rng.chance(params.multihome_probability)) {
        auto second = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(above.size()) - 1));
        if (second == first) second = (second + 1) % above.size();
        add_provider_link(above[second], as_name);
      }
    }
  }

  // Peer links within a level. The top level is fully peered (tier-1
  // mesh), lower levels peer probabilistically.
  for (std::size_t level = 0; level < levels.size(); ++level) {
    const auto& peers = levels[level];
    for (std::size_t i = 0; i < peers.size(); ++i) {
      for (std::size_t j = i + 1; j < peers.size(); ++j) {
        const bool top_mesh = level == 0;
        if (top_mesh || rng.chance(params.peer_probability)) {
          topology.links.push_back(
              TopoLink{peers[i], peers[j], to_peer, to_peer, params.link});
        }
      }
    }
  }

  // Destination: a stub customer below a deepest-level AS, so routes climb
  // the whole hierarchy.
  topology.destination = "dst";
  topology.nodes.push_back(topology.destination);
  add_provider_link(levels.back().front(), topology.destination);

  return topology;
}

std::int32_t longest_customer_provider_chain(const Topology& topology) {
  // Longest path in the provider -> customer DAG, in edges. The generator
  // produces an acyclic provider structure; a cycle would mean a corrupt
  // topology, caught by the depth bound below.
  std::map<std::string, std::vector<std::string>> customers;
  const auto is_customer_side = [](const algebra::Value& label) {
    const algebra::Value& core = label.is_pair() ? label.first() : label;
    return core.is_atom() && core.as_atom() == "c";
  };
  for (const TopoLink& link : topology.links) {
    if (is_customer_side(link.label_uv)) customers[link.u].push_back(link.v);
    if (is_customer_side(link.label_vu)) customers[link.v].push_back(link.u);
  }

  std::map<std::string, std::int32_t> memo;
  const std::int32_t limit =
      static_cast<std::int32_t>(topology.nodes.size()) + 1;

  // Iterative deepening over memoised depth-first search.
  std::function<std::int32_t(const std::string&, std::int32_t)> down =
      [&](const std::string& node, std::int32_t budget) -> std::int32_t {
    if (budget <= 0) {
      throw Error("customer-provider structure is not acyclic");
    }
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    std::int32_t best = 0;
    const auto adj = customers.find(node);
    if (adj != customers.end()) {
      for (const std::string& customer : adj->second) {
        best = std::max(best, 1 + down(customer, budget - 1));
      }
    }
    memo[node] = best;
    return best;
  };

  std::int32_t longest = 0;
  for (const std::string& node : topology.nodes) {
    longest = std::max(longest, down(node, limit));
  }
  return longest;
}

}  // namespace fsr::topology
