// Topology description shared by the emulation layer and the generators.
//
// A Topology is policy-annotated: every directed side of a link carries
// the algebra label the owning node uses when extending routes over it
// (atoms for business relationships, integers for costs, pairs for
// lexical products). The destination is a distinguished node; nodes
// adjacent to it originate one-hop routes per the algebra's origination
// map (Section V-B step 4).
#ifndef FSR_TOPOLOGY_TOPOLOGY_H
#define FSR_TOPOLOGY_TOPOLOGY_H

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algebra/value.h"
#include "net/simulator.h"

namespace fsr::topology {

struct TopoLink {
  std::string u;
  std::string v;
  algebra::Value label_uv;  // u's label for the link towards v
  algebra::Value label_vu;  // v's label for the link towards u
  net::LinkConfig net_config;
};

struct Topology {
  std::string name;
  std::vector<std::string> nodes;  // includes the destination
  std::string destination;
  std::vector<TopoLink> links;
  /// Optional node -> domain marker (used by HLP). Markers are atoms like
  /// "dom3".
  std::map<std::string, std::string> domain_of;

  bool has_node(const std::string& node) const;
  /// Links incident to `node`, as (neighbour, label from node's side).
  std::vector<std::pair<std::string, algebra::Value>> labelled_neighbors(
      const std::string& node) const;
  std::size_t node_count() const noexcept { return nodes.size(); }
};

}  // namespace fsr::topology

#endif  // FSR_TOPOLOGY_TOPOLOGY_H
