// The Section VI-D topology: a multi-domain network for the PV / HLP /
// HLP-CH comparison (Figure 6).
//
// Paper parameters, reproduced here: 10 domains, each a 20-node acyclic
// hierarchy rooted at a top provider where every non-root node has 1-2
// providers; 84 cross-domain links; 10 ms intra-domain and 50 ms
// cross-domain latency; 100 Mbps everywhere. Link costs are small
// integers so that cost hiding (threshold 5) has visible effect. The
// destination attaches to one node of domain 0.
#ifndef FSR_TOPOLOGY_HLP_DOMAINS_H
#define FSR_TOPOLOGY_HLP_DOMAINS_H

#include <cstdint>

#include "topology/topology.h"

namespace fsr::topology {

struct HlpDomainsParams {
  std::int32_t domain_count = 10;
  std::int32_t nodes_per_domain = 20;
  std::int32_t cross_domain_links = 84;
  std::uint64_t seed = 1;
  net::Time intra_latency = 10 * net::k_millisecond;
  net::Time inter_latency = 50 * net::k_millisecond;
};

/// Generates the domain topology. Link labels are integer costs (the PV
/// baseline runs the additive algebra directly over them); domain_of maps
/// every node to its marker atom ("dom0".."dom9"); domain markers and
/// link types (intra/inter) are what fsr::emulate_hlp consumes.
Topology generate_hlp_domains(const HlpDomainsParams& params);

/// True if the link crosses domains (used when emitting link facts).
bool is_cross_domain(const Topology& topology, const TopoLink& link);

}  // namespace fsr::topology

#endif  // FSR_TOPOLOGY_HLP_DOMAINS_H
