#include "topology/rocketfuel.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "util/error.h"
#include "util/rng.h"

namespace fsr::topology {
namespace {

constexpr std::int32_t k_router_count = 87;
constexpr std::size_t k_physical_links = 322;
const std::vector<std::int32_t> k_reflector_levels = {3, 6, 10, 14, 20};

struct PhysicalGraph {
  std::vector<std::string> routers;
  std::map<std::string, std::int32_t> level_of;  // 0..5 (5 = clients)
  std::map<std::pair<std::string, std::string>, std::int32_t> weights;
  std::map<std::string, std::vector<std::pair<std::string, std::int32_t>>> adj;

  void add_link(const std::string& a, const std::string& b,
                std::int32_t weight) {
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (weights.contains(key)) return;
    weights.emplace(key, weight);
    adj[a].emplace_back(b, weight);
    adj[b].emplace_back(a, weight);
  }

  bool has_link(const std::string& a, const std::string& b) const {
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    return weights.contains(key);
  }
};

/// Dijkstra from `source` over the physical graph.
std::map<std::string, std::int64_t> igp_costs_from(const PhysicalGraph& graph,
                                                   const std::string& source) {
  std::map<std::string, std::int64_t> dist;
  using Item = std::pair<std::int64_t, std::string>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[source] = 0;
  queue.emplace(0, source);
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    const auto it = dist.find(node);
    if (it != dist.end() && it->second < d) continue;
    const auto adj_it = graph.adj.find(node);
    if (adj_it == graph.adj.end()) continue;
    for (const auto& [next, weight] : adj_it->second) {
      const std::int64_t nd = d + weight;
      const auto next_it = dist.find(next);
      if (next_it == dist.end() || nd < next_it->second) {
        dist[next] = nd;
        queue.emplace(nd, next);
      }
    }
  }
  return dist;
}

}  // namespace

IbgpExperiment build_rocketfuel_ibgp(const RocketfuelParams& params) {
  util::Rng rng(params.seed);
  PhysicalGraph graph;
  IbgpExperiment experiment;

  // ---- Routers in levels: 53 reflectors in 5 levels + 34 clients. ----
  std::vector<std::vector<std::string>> levels;
  std::int32_t made = 0;
  for (std::size_t level = 0; level < k_reflector_levels.size(); ++level) {
    std::vector<std::string> names;
    for (std::int32_t i = 0; i < k_reflector_levels[level]; ++i) {
      const std::string name =
          "r" + std::to_string(level) + "_" + std::to_string(i);
      names.push_back(name);
      graph.routers.push_back(name);
      graph.level_of[name] = static_cast<std::int32_t>(level);
      experiment.reflectors.push_back(name);
      ++made;
    }
    levels.push_back(std::move(names));
  }
  std::vector<std::string> clients;
  for (std::int32_t i = made; i < k_router_count; ++i) {
    const std::string name = "c" + std::to_string(i - made);
    clients.push_back(name);
    graph.routers.push_back(name);
    graph.level_of[name] = static_cast<std::int32_t>(levels.size());
  }
  levels.push_back(clients);

  // ---- Physical links: parent attachments + mesh + random padding. ----
  const auto weight = [&rng]() {
    return static_cast<std::int32_t>(rng.uniform_int(1, 20));
  };
  // Top-level physical triangle.
  for (std::size_t i = 0; i < levels[0].size(); ++i) {
    for (std::size_t j = i + 1; j < levels[0].size(); ++j) {
      graph.add_link(levels[0][i], levels[0][j], weight());
    }
  }
  for (std::size_t level = 1; level < levels.size(); ++level) {
    const auto& above = levels[level - 1];
    for (const std::string& router : levels[level]) {
      const auto first = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(above.size()) - 1));
      graph.add_link(router, above[first], weight());
      if (rng.chance(0.6)) {
        auto second = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(above.size()) - 1));
        if (second == first) second = (second + 1) % above.size();
        graph.add_link(router, above[second], weight());
      }
    }
  }
  // ---- Egresses: three designated client routers, rewired as direct
  // clients (physical + session) of the three top reflectors, mirroring
  // the Figure-3 layout. They stay part of the 87-router population.
  const std::vector<std::string> gadget_reflectors = levels[0];
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string& egress = clients.at(i);
    experiment.egresses.push_back(egress);
    graph.add_link(egress, gadget_reflectors[i], weight());
  }

  // Pad with random links (any pair) until the Rocketfuel link count.
  std::int32_t guard = 0;
  while (graph.weights.size() < k_physical_links && ++guard < 100000) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(graph.routers.size()) - 1));
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(graph.routers.size()) - 1));
    if (i == j) continue;
    graph.add_link(graph.routers[i], graph.routers[j], weight());
  }

  // ---- iBGP session graph. ----
  spp::SppInstance instance(params.embed_gadget ? "rocketfuel-ibgp-gadget"
                                                : "rocketfuel-ibgp",
                            "0");
  std::set<std::pair<std::string, std::string>> sessions;
  const auto add_session = [&](const std::string& a, const std::string& b) {
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (sessions.insert(key).second) instance.add_edge(a, b);
  };
  // Sessions follow physical parent/child links between adjacent levels
  // plus the top-level mesh (including the rewired egress attachments).
  for (const auto& [key, w] : graph.weights) {
    (void)w;
    const std::int32_t la = graph.level_of.at(key.first);
    const std::int32_t lb = graph.level_of.at(key.second);
    if (la == 0 && lb == 0) {
      add_session(key.first, key.second);
    } else if (std::abs(la - lb) >= 1 &&
               (la == 0 || lb == 0 || std::abs(la - lb) == 1)) {
      add_session(key.first, key.second);
    }
  }
  // External routes: one virtual egress link per egress router.
  for (const std::string& egress : experiment.egresses) {
    instance.add_edge(egress, "0");
  }

  // ---- IGP costs to each egress (hot-potato preference). ----
  std::map<std::string, std::map<std::string, std::int64_t>> cost_to_egress;
  for (const std::string& egress : experiment.egresses) {
    cost_to_egress[egress] = igp_costs_from(graph, egress);
  }

  // Session adjacency for path enumeration.
  std::map<std::string, std::vector<std::string>> session_adj;
  for (const auto& [a, b] : sessions) {
    session_adj[a].push_back(b);
    session_adj[b].push_back(a);
  }

  // ---- Permitted paths: IGP-descending session paths to each egress. ----
  // A hop u -> v is admissible when v is strictly closer (IGP) to the
  // egress; hot-potato routing only ever uses such paths, and the
  // discipline guarantees a strictly monotone witness for the clean
  // configuration (rank(p) = (igp cost of source, length, name)).
  struct RankedPath {
    std::int64_t cost = 0;
    std::size_t length = 0;
    spp::Path path;
  };
  std::map<std::string, std::vector<RankedPath>> ranked;

  for (const std::string& egress : experiment.egresses) {
    const auto& cost = cost_to_egress.at(egress);
    // Reverse BFS from the egress over admissible (descending) edges,
    // collecting up to paths_per_egress paths per router.
    std::map<std::string, std::vector<spp::Path>> paths_to;  // router->paths
    paths_to[egress] = {{egress, "0"}};
    // Process routers in increasing IGP cost so suffix paths exist first.
    std::vector<std::string> order;
    for (const auto& [node, c] : cost) {
      (void)c;
      if (node != egress && session_adj.contains(node)) order.push_back(node);
    }
    std::sort(order.begin(), order.end(),
              [&cost](const std::string& a, const std::string& b) {
                return cost.at(a) != cost.at(b) ? cost.at(a) < cost.at(b)
                                                : a < b;
              });
    for (const std::string& node : order) {
      std::vector<spp::Path> found;
      for (const std::string& next : session_adj.at(node)) {
        const auto next_cost = cost.find(next);
        if (next_cost == cost.end() || next_cost->second >= cost.at(node)) {
          continue;  // not IGP-descending
        }
        const auto suffixes = paths_to.find(next);
        if (suffixes == paths_to.end()) continue;
        for (const spp::Path& suffix : suffixes->second) {
          if (suffix.size() + 1 >
              static_cast<std::size_t>(params.max_path_length) + 1) {
            continue;
          }
          if (std::find(suffix.begin(), suffix.end(), node) != suffix.end()) {
            continue;
          }
          spp::Path path;
          path.push_back(node);
          path.insert(path.end(), suffix.begin(), suffix.end());
          found.push_back(std::move(path));
        }
      }
      std::sort(found.begin(), found.end(),
                [](const spp::Path& a, const spp::Path& b) {
                  return a.size() != b.size() ? a.size() < b.size() : a < b;
                });
      if (found.size() > static_cast<std::size_t>(params.paths_per_egress)) {
        found.resize(static_cast<std::size_t>(params.paths_per_egress));
      }
      if (!found.empty()) paths_to[node] = found;
      for (const spp::Path& path : paths_to[node]) {
        ranked[node].push_back(RankedPath{cost.at(node), path.size(), path});
      }
    }
    ranked[egress].push_back(RankedPath{0, 2, {egress, "0"}});
  }

  // ---- Gadget override lists (Figure 3 pattern). ----
  const std::vector<std::string>& g = gadget_reflectors;  // A, B, C
  const std::vector<std::string>& e = experiment.egresses;
  experiment.gadget_routers = {g[0], g[1], g[2], e[0], e[1], e[2]};
  std::map<std::string, std::vector<spp::Path>> overrides;
  if (params.embed_gadget) {
    // Each reflector prefers the NEXT reflector's client egress.
    overrides[g[0]] = {{g[0], g[1], e[1], "0"}, {g[0], e[0], "0"}};
    overrides[g[1]] = {{g[1], g[2], e[2], "0"}, {g[1], e[1], "0"}};
    overrides[g[2]] = {{g[2], g[0], e[0], "0"}, {g[2], e[2], "0"}};
  } else {
    // Clean configuration: own client's egress first.
    overrides[g[0]] = {{g[0], e[0], "0"}, {g[0], g[1], e[1], "0"}};
    overrides[g[1]] = {{g[1], e[1], "0"}, {g[1], g[2], e[2], "0"}};
    overrides[g[2]] = {{g[2], e[2], "0"}, {g[2], g[0], e[0], "0"}};
  }
  // Egress routers mirror Figure 3: external route first, then the routes
  // reflected through the triangle.
  overrides[e[0]] = {{e[0], "0"},
                     {e[0], g[0], g[1], e[1], "0"},
                     {e[0], g[0], g[2], e[2], "0"}};
  overrides[e[1]] = {{e[1], "0"},
                     {e[1], g[1], g[0], e[0], "0"},
                     {e[1], g[1], g[2], e[2], "0"}};
  overrides[e[2]] = {{e[2], "0"},
                     {e[2], g[2], g[0], e[0], "0"},
                     {e[2], g[2], g[1], e[1], "0"}};

  // ---- Emit permitted paths: overrides first, everyone else by rank. ----
  for (const auto& [node, paths] : overrides) {
    (void)node;
    for (const spp::Path& path : paths) {
      instance.add_permitted_path(path);
    }
  }
  for (auto& [node, entries] : ranked) {
    if (overrides.contains(node)) continue;
    std::sort(entries.begin(), entries.end(),
              [](const RankedPath& a, const RankedPath& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                if (a.length != b.length) return a.length < b.length;
                return a.path < b.path;
              });
    for (const RankedPath& entry : entries) {
      instance.add_permitted_path(entry.path);
    }
  }

  experiment.instance = std::move(instance);
  experiment.router_count = graph.routers.size();
  experiment.physical_link_count = graph.weights.size();
  experiment.session_count = sessions.size();
  experiment.level_of = graph.level_of;
  return experiment;
}

}  // namespace fsr::topology
