// Synthetic AS-level topologies with annotated business relationships —
// the stand-in for the paper's CAIDA-derived subgraphs (Section VI-A).
//
// The paper prunes stub ASes from the CAIDA graph, roots a subgraph at a
// random AS and keeps everything reachable over peer/customer links,
// selecting subgraphs whose longest customer-provider chain ranges from 3
// to 16. This generator reproduces those structural parameters directly:
//
//   * `depth` levels of providers (the longest customer-provider chain);
//   * every AS below the top level has 1-2 providers in the level above
//     (multi-homing, which is what lets real convergence beat the
//     theoretical worst case);
//   * same-level peer links with configurable probability;
//   * the destination is a stub customer attached below a deepest-level
//     AS, so routes must traverse the full hierarchy.
//
// All randomness comes from the seed; a (depth, seed) pair is a
// reproducible experiment input.
#ifndef FSR_TOPOLOGY_AS_HIERARCHY_H
#define FSR_TOPOLOGY_AS_HIERARCHY_H

#include <cstdint>

#include "topology/topology.h"

namespace fsr::topology {

struct AsHierarchyParams {
  std::int32_t depth = 6;            // longest customer-provider chain
  std::int32_t top_level_count = 2;  // ASes at the top (tier-1) level
  double level_growth = 1.6;         // level i has ~growth^i ASes
  double multihome_probability = 0.5;  // chance of a second provider
  double peer_probability = 0.25;      // chance of a peer link per pair
  std::uint64_t seed = 1;
  net::LinkConfig link;  // defaults: 100 Mbps, 10 ms (the paper's setup)
};

enum class LabelScheme {
  business,            // atoms c/p/r (plain Gao-Rexford)
  business_hop_count,  // pairs (c/p/r, 1) for guideline-A (x) hop-count
};

/// Generates the annotated hierarchy as a ready-to-emulate Topology.
Topology generate_as_hierarchy(const AsHierarchyParams& params,
                               LabelScheme scheme);

/// The longest customer-provider chain actually present (graph measure;
/// equals params.depth + 1 counting the destination's attachment edge).
std::int32_t longest_customer_provider_chain(const Topology& topology);

}  // namespace fsr::topology

#endif  // FSR_TOPOLOGY_AS_HIERARCHY_H
