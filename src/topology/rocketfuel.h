// Rocketfuel-like intradomain topology and iBGP experiment construction
// (paper Section VI-B, Figure 5).
//
// The paper uses the inferred AS 1755 topology: 87 routers, 322 links,
// IGP link weights, a 6-level route-reflection hierarchy with 53
// reflectors, and three egress routers holding external routes to one
// destination. We have no licensed Rocketfuel snapshot offline, so this
// generator reproduces those structural parameters synthetically and
// deterministically from a seed:
//
//   * 87 routers in 6 levels (3/6/10/14/20 reflectors = 53, plus 34
//     clients), physical links padded to exactly 322 with random extras,
//     integer IGP weights;
//   * pairwise IGP costs computed a priori by Dijkstra (as the paper
//     does);
//   * an iBGP session graph: top-level mesh, parent/child sessions, the
//     three egresses sessioned to the three top reflectors;
//   * per-router rankings over session paths by hot-potato preference
//     (lowest IGP cost to the egress), with only IGP-descending paths
//     permitted — which makes the clean configuration provably safe;
//   * optionally, the Figure-3 gadget embedded at the top-reflector
//     triangle by overriding six routers' rankings ("setting their IGP
//     cost to the egress routers the same as those in Figure 3").
//
// The result is expressed as an SPP instance (the paper's own analysis
// path: per-node rankings extracted from protocol runs), ready for both
// the safety analyzer and the GPV emulation.
#ifndef FSR_TOPOLOGY_ROCKETFUEL_H
#define FSR_TOPOLOGY_ROCKETFUEL_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "spp/spp.h"

namespace fsr::topology {

struct RocketfuelParams {
  std::uint64_t seed = 1;
  bool embed_gadget = false;  // Figure-3 pattern at the reflector triangle
  /// Maximum session paths kept per (router, egress) during extraction.
  /// The default yields constraint counts in the paper's range (~230
  /// ranking + ~280 strict-monotonicity constraints vs the paper's
  /// 292 + 259).
  std::int32_t paths_per_egress = 4;
  /// Maximum session-path length (hops) during extraction.
  std::int32_t max_path_length = 8;
};

struct IbgpExperiment {
  spp::SppInstance instance{"rocketfuel-ibgp", "0"};  // session-level SPP
  std::vector<std::string> reflectors;
  std::vector<std::string> egresses;
  std::vector<std::string> gadget_routers;  // the six overridden routers
  std::size_t router_count = 0;
  std::size_t physical_link_count = 0;
  std::size_t session_count = 0;
  std::map<std::string, std::int32_t> level_of;
};

IbgpExperiment build_rocketfuel_ibgp(const RocketfuelParams& params);

}  // namespace fsr::topology

#endif  // FSR_TOPOLOGY_ROCKETFUEL_H
