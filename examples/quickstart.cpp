// Quickstart: the complete FSR workflow in one file.
//
//   1. Express a routing policy as an algebra (Gao-Rexford guideline A).
//   2. Run the automated safety analysis: the strict check fails (so the
//      guideline alone is not provably safe) but the monotone check
//      passes, so composing with shortest hop-count rescues it.
//   3. Analyze the composition: provably safe.
//   4. Generate the NDlog implementation and emulate it over a small AS
//      hierarchy, reporting convergence time and the selected routes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algebra/standard_policies.h"
#include "fsr/emulation.h"
#include "fsr/ndlog_generator.h"
#include "fsr/safety_analyzer.h"
#include "proto/gpv.h"
#include "topology/as_hierarchy.h"

int main() {
  // -- 1. The policy ------------------------------------------------------
  const fsr::algebra::AlgebraPtr guideline =
      fsr::algebra::gao_rexford_guideline_a();
  std::printf("policy: %s\n\n", guideline->name().c_str());

  // -- 2. Safety analysis of the bare guideline ---------------------------
  const fsr::SafetyAnalyzer analyzer;
  const fsr::SafetyReport bare = analyzer.analyze(*guideline);
  std::printf("%s\n\n", bare.narrative.c_str());
  if (const auto* core = bare.failing_core()) {
    std::printf("violating constraint(s):\n");
    for (const auto& prov : *core) {
      std::printf("  %s  (from %s)\n", prov.constraint.c_str(),
                  prov.description.c_str());
    }
    std::printf("\n");
  }

  // -- 3. Compose with a strictly monotone tie-breaker --------------------
  const fsr::algebra::AlgebraPtr safe_policy =
      fsr::algebra::gao_rexford_with_hop_count();
  const fsr::SafetyReport composed = analyzer.analyze(*safe_policy);
  std::printf("%s\n\n", composed.narrative.c_str());

  // -- 4. Generate the implementation and emulate it ----------------------
  std::printf("generated policy functions:\n%s\n",
              fsr::render_policy_functions(*guideline).c_str());

  fsr::topology::AsHierarchyParams params;
  params.depth = 4;
  params.seed = 2026;
  const fsr::topology::Topology topo = fsr::topology::generate_as_hierarchy(
      params, fsr::topology::LabelScheme::business_hop_count);

  fsr::EmulationOptions options;
  options.batch_interval = fsr::net::k_second;
  const fsr::EmulationResult result =
      fsr::emulate_gpv(*safe_policy, topo, options);

  std::printf("emulation over %zu ASes: %s, convergence %.2f s, %llu "
              "messages\n\n",
              topo.nodes.size(), result.quiesced ? "converged" : "cut off",
              static_cast<double>(result.convergence_time) /
                  fsr::net::k_second,
              static_cast<unsigned long long>(result.messages));
  std::printf("selected routes (node: signature, path):\n");
  for (const auto& [node, route] : result.best_routes) {
    std::printf("  %-8s %-10s", node.c_str(), route.first.c_str());
    for (const std::string& hop : route.second) std::printf(" %s", hop.c_str());
    std::printf("\n");
  }
  return 0;
}
