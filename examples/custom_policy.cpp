// Authoring a custom policy from scratch with the algebra builder.
//
// Builds a "regional routing" policy: routes are classified as in-region
// or out-of-region; in-region routes are preferred; out-of-region routes
// may not be re-exported across another region boundary (a simple
// valley-free-style rule). The example shows
//   * the FiniteAlgebra builder API with separated import/export filters,
//   * the safety analysis catching that the bare policy is only monotone,
//   * rescuing it with a hop-count tie-breaker (lexical product),
//   * emulating the composition, and writing the emitted Yices script to
//     stdout so it can be inspected or post-edited.
//
// Build & run:  ./build/examples/custom_policy
#include <cstdio>

#include "algebra/additive_algebra.h"
#include "algebra/finite_algebra.h"
#include "algebra/lexical_product.h"
#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "topology/topology.h"

namespace {

fsr::algebra::AlgebraPtr regional_policy() {
  using fsr::algebra::PrefRel;
  fsr::algebra::FiniteAlgebra::Builder builder("regional");
  builder.add_signature("IN");   // stayed inside the region so far
  builder.add_signature("OUT");  // crossed at least one region boundary
  builder.add_label("i", "i");   // intra-region link (self-reverse)
  builder.add_label("x", "x");   // cross-region link (self-reverse)

  builder.prefer("IN", PrefRel::strictly_better, "OUT",
                 "keep traffic regional: IN < OUT");

  // Extension: crossing an 'x' link makes any route OUT; intra links
  // preserve the classification.
  builder.set_generation("i", "IN", "IN");
  builder.set_generation("i", "OUT", "OUT");
  builder.set_generation("x", "IN", "OUT");
  builder.set_generation("x", "OUT", "OUT");

  // Export filter (receiver-side keyed): an OUT route may not cross a
  // second region boundary.
  builder.set_export("x", "OUT", false);

  builder.set_origination("i", "IN");
  builder.set_origination("x", "OUT");
  return builder.build();
}

/// Two 3-node regions joined by one cross link; destination in region A.
fsr::topology::Topology two_regions() {
  using fsr::algebra::Value;
  fsr::topology::Topology topo;
  topo.name = "two-regions";
  topo.nodes = {"a1", "a2", "a3", "b1", "b2", "b3", "dst"};
  topo.destination = "dst";
  const auto intra = [](const char* u, const char* v) {
    return fsr::topology::TopoLink{
        u, v, Value::pair(Value::atom("i"), Value::integer(1)),
        Value::pair(Value::atom("i"), Value::integer(1)), {}};
  };
  const auto cross = [](const char* u, const char* v) {
    return fsr::topology::TopoLink{
        u, v, Value::pair(Value::atom("x"), Value::integer(1)),
        Value::pair(Value::atom("x"), Value::integer(1)), {}};
  };
  topo.links = {intra("a1", "a2"), intra("a2", "a3"), intra("a1", "a3"),
                intra("b1", "b2"), intra("b2", "b3"), intra("b1", "b3"),
                cross("a3", "b1"), intra("a1", "dst")};
  return topo;
}

}  // namespace

int main() {
  const auto regional = regional_policy();

  const fsr::SafetyAnalyzer analyzer;
  const auto bare = analyzer.analyze(*regional);
  std::printf("bare policy: %s\n\n", bare.narrative.c_str());

  // Print the emitted solver script for the strict check - the artifact a
  // user could edit and re-run through the textual pipeline.
  std::printf("emitted Yices script (strict check):\n%s\n",
              bare.checks.front().yices_script.c_str());

  const auto safe = fsr::algebra::lexical_product(
      regional, fsr::algebra::shortest_hop_count());
  const auto composed = analyzer.analyze(*safe);
  std::printf("%s\n\n", composed.narrative.c_str());

  fsr::EmulationOptions options;
  options.batch_interval = 100 * fsr::net::k_millisecond;
  const auto run = fsr::emulate_gpv(*safe, two_regions(), options);
  std::printf("emulation: %s, %zu nodes routed\n",
              run.quiesced ? "converged" : "cut off",
              run.best_routes.size());
  for (const auto& [node, route] : run.best_routes) {
    std::printf("  %-4s %-12s via", node.c_str(), route.first.c_str());
    for (const auto& hop : route.second) std::printf(" %s", hop.c_str());
    std::printf("\n");
  }
  std::printf("\nnote: region B routes are OUT and reach the destination "
              "through the single allowed boundary crossing.\n");
  return 0;
}
