// Alternative routing mechanisms (paper Section VI-D): swapping GPV for
// HLP without touching the rest of the toolkit.
//
// FSR treats the mechanism as an input: this example runs the same
// multi-domain topology under the path-vector baseline, HLP, and HLP with
// cost hiding, then injects intra-domain cost churn and shows how the
// fragmented path-vector isolates other domains from it.
//
// Build & run:  ./build/examples/hlp_comparison
#include <cstdio>

#include "algebra/additive_algebra.h"
#include "fsr/emulation.h"
#include "topology/hlp_domains.h"

int main() {
  fsr::topology::HlpDomainsParams params;
  params.domain_count = 6;  // smaller than the benchmark for a quick demo
  params.nodes_per_domain = 12;
  params.cross_domain_links = 30;
  const auto topo = fsr::topology::generate_hlp_domains(params);
  std::printf("topology: %zu nodes in %d domains, %zu links\n\n",
              topo.nodes.size(), params.domain_count, topo.links.size());

  fsr::EmulationOptions options;
  options.batch_interval = 100 * fsr::net::k_millisecond;
  options.max_time = 90 * fsr::net::k_second;
  options.churn.events = 10;
  options.churn.start = 10 * fsr::net::k_second;
  options.churn.interval = fsr::net::k_second;
  options.churn.magnitude = 2;  // below the hiding threshold

  const auto pv_algebra =
      fsr::algebra::igp_cost({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  const auto pv = fsr::emulate_gpv(*pv_algebra, topo, options);
  const auto hlp = fsr::emulate_hlp(topo, 0, options);
  const auto hlp_ch = fsr::emulate_hlp(topo, 5, options);

  std::printf("%-8s %-12s %-12s %-14s\n", "run", "messages", "bytes",
              "bytes/node");
  for (const auto& [name, result] :
       {std::pair<const char*, const fsr::EmulationResult&>{"PV", pv},
        {"HLP", hlp},
        {"HLP-CH", hlp_ch}}) {
    std::printf("%-8s %-12llu %-12llu %-14.1f\n", name,
                static_cast<unsigned long long>(result.messages),
                static_cast<unsigned long long>(result.bytes),
                static_cast<double>(result.bytes) /
                    static_cast<double>(result.node_count));
  }

  std::printf(
      "\nHLP advertisements across domain boundaries carry one marker per\n"
      "traversed domain instead of every router, and cost hiding makes\n"
      "sub-threshold churn invisible outside the domain - hence the\n"
      "decreasing per-node communication cost.\n");

  // Show what a fragmented route looks like from another domain.
  for (const auto& [node, route] : hlp.best_routes) {
    if (topo.domain_of.at(node) != "dom0" && route.second.size() > 2) {
      std::printf("\nexample fragment at %s (domain %s):", node.c_str(),
                  topo.domain_of.at(node).c_str());
      for (const auto& hop : route.second) std::printf(" %s", hop.c_str());
      std::printf("\n");
      break;
    }
  }
  return 0;
}
