// Operator scenario (paper Sections IV-C and VI-B): debugging an iBGP
// configuration with FSR.
//
// A network operator extracts the per-router route rankings of an AS with
// route reflection (here: the Rocketfuel-like 87-router topology with the
// Figure-3 gadget embedded), runs the safety analysis, reads the minimal
// unsat core to locate the offending routers, repairs their preferences,
// and re-checks. Finally both configurations are emulated to see the
// oscillation and its fix in protocol dynamics.
//
// Build & run:  ./build/examples/ibgp_debugging
#include <cstdio>

#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "spp/translate.h"
#include "topology/rocketfuel.h"

int main() {
  // -- The broken configuration -------------------------------------------
  fsr::topology::RocketfuelParams params;
  params.embed_gadget = true;
  const auto broken = fsr::topology::build_rocketfuel_ibgp(params);
  std::printf("AS under test: %zu routers, %zu physical links, %zu iBGP "
              "sessions, %zu permitted paths extracted\n\n",
              broken.router_count, broken.physical_link_count,
              broken.session_count,
              broken.instance.permitted_path_count());

  const fsr::SafetyAnalyzer analyzer;
  const auto verdict = analyzer.check_monotonicity(
      *fsr::spp::algebra_from_spp(broken.instance),
      fsr::MonotonicityMode::strict);
  std::printf("analysis: %s (%zu ranking + %zu monotonicity constraints, "
              "%.1f ms)\n",
              verdict.holds ? "sat" : "unsat",
              verdict.preference_constraint_count,
              verdict.monotonicity_constraint_count, verdict.solve_time_ms);

  if (!verdict.holds) {
    std::printf("\nthe minimal unsat core points at the problem:\n");
    for (const auto& prov : verdict.unsat_core) {
      std::printf("  %s\n", prov.description.c_str());
    }
    std::printf("\n=> the cycle runs through the reflector triangle; each "
                "reflector prefers another reflector's client egress.\n\n");
  }

  // -- The repair -----------------------------------------------------------
  params.embed_gadget = false;
  const auto repaired = fsr::topology::build_rocketfuel_ibgp(params);
  const auto recheck = analyzer.check_monotonicity(
      *fsr::spp::algebra_from_spp(repaired.instance),
      fsr::MonotonicityMode::strict);
  std::printf("after repair (own-client preference): %s\n\n",
              recheck.holds ? "sat - provably safe" : "still unsat");

  // -- Watch both configurations run ---------------------------------------
  fsr::EmulationOptions options;
  options.batch_interval = 100 * fsr::net::k_millisecond;
  options.max_time = 15 * fsr::net::k_second;
  fsr::net::LinkConfig link;
  link.max_jitter = 3 * fsr::net::k_millisecond;

  const auto broken_run =
      fsr::emulate_spp(broken.instance, options, link);
  const auto repaired_run =
      fsr::emulate_spp(repaired.instance, options, link);
  std::printf("emulation, broken  : %s, %llu messages in %.0f s window\n",
              broken_run.quiesced ? "converged" : "OSCILLATING",
              static_cast<unsigned long long>(broken_run.messages),
              static_cast<double>(options.max_time) / fsr::net::k_second);
  std::printf("emulation, repaired: %s in %.2f s, %llu messages\n",
              repaired_run.quiesced ? "converged" : "oscillating",
              static_cast<double>(repaired_run.convergence_time) /
                  fsr::net::k_second,
              static_cast<unsigned long long>(repaired_run.messages));
  return 0;
}
