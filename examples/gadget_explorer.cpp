// Researcher scenario (paper Section VI-C): exploring eBGP gadgets.
//
// Encodes the classic SPP gadgets, cross-checks three independent
// methods on each — exhaustive stable-state enumeration, the SMT safety
// analysis, and distributed emulation — and prints the comparison. This
// is the workflow a researcher uses to study a new guideline's
// counter-examples.
//
// Build & run:  ./build/examples/gadget_explorer
#include <cstdio>

#include "fsr/emulation.h"
#include "fsr/safety_analyzer.h"
#include "spp/gadgets.h"
#include "spp/translate.h"

int main() {
  const std::vector<std::pair<std::string, fsr::spp::SppInstance>> gadgets = {
      {"GOOD GADGET", fsr::spp::good_gadget()},
      {"BAD GADGET", fsr::spp::bad_gadget()},
      {"DISAGREE", fsr::spp::disagree_gadget()},
      {"iBGP (Figure 3)", fsr::spp::ibgp_figure3_gadget()},
      {"iBGP repaired", fsr::spp::ibgp_figure3_fixed()},
  };

  const fsr::SafetyAnalyzer analyzer;
  std::printf("%-18s %-14s %-18s %-22s\n", "gadget", "stable states",
              "FSR analysis", "emulation");
  std::printf("%-18s %-14s %-18s %-22s\n", "------", "-------------",
              "------------", "---------");

  for (const auto& [name, instance] : gadgets) {
    // Ground truth: exhaustive enumeration of stable path assignments.
    const auto stable = fsr::spp::enumerate_stable_assignments(instance);

    // FSR's solver-based verdict.
    const auto report =
        analyzer.analyze(*fsr::spp::algebra_from_spp(instance));
    const bool safe = report.verdict == fsr::SafetyVerdict::safe;

    // Dynamics: the generated NDlog implementation over the simulator.
    fsr::EmulationOptions options;
    options.batch_interval = 100 * fsr::net::k_millisecond;
    options.max_time = 20 * fsr::net::k_second;
    const auto run = fsr::emulate_spp(instance, options);

    char emu[64];
    if (run.quiesced) {
      std::snprintf(emu, sizeof emu, "converges (%.2f s)",
                    static_cast<double>(run.convergence_time) /
                        fsr::net::k_second);
    } else {
      std::snprintf(emu, sizeof emu, "oscillates (%llu msgs)",
                    static_cast<unsigned long long>(run.messages));
    }
    std::printf("%-18s %-14zu %-18s %-22s\n", name.c_str(), stable.size(),
                safe ? "safe" : "not provably safe", emu);
  }

  std::printf(
      "\nNote how DISAGREE converges in emulation yet is reported 'not\n"
      "provably safe': strict monotonicity is sufficient, not necessary -\n"
      "the known false positive the paper discusses in Section IV-A.\n");
  return 0;
}
